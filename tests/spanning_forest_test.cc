// Tests for the AGM spanning-forest sketch and k-EDGECONNECT (Thm 2.3).
#include <gtest/gtest.h>

#include "src/core/k_edge_connect.h"
#include "src/core/spanning_forest.h"
#include "src/graph/generators.h"
#include "src/graph/stream.h"
#include "src/hash/random.h"

namespace gsketch {
namespace {

ForestOptions TestForestOptions() {
  ForestOptions opt;
  opt.repetitions = 6;
  return opt;
}

void Feed(SpanningForestSketch* sk, const Graph& g) {
  for (const auto& e : g.Edges()) {
    sk->Update(e.u, e.v, static_cast<int64_t>(e.weight));
  }
}

TEST(SpanningForest, ConnectedGraphYieldsSpanningTree) {
  Graph g = ErdosRenyi(32, 0.3, 1);
  if (g.NumComponents() != 1) GTEST_SKIP();
  SpanningForestSketch sk(32, TestForestOptions(), 11);
  Feed(&sk, g);
  Graph forest = sk.ExtractForest();
  EXPECT_EQ(forest.NumEdges(), 31u);
  EXPECT_EQ(forest.NumComponents(), 1u);
  EXPECT_TRUE(g.ContainsEdgesOf(forest));
}

TEST(SpanningForest, MatchesComponentStructure) {
  // Three fixed components: {0..9} path, {10..19} cycle, {20} isolated.
  Graph g(21);
  for (NodeId v = 0; v + 1 < 10; ++v) g.AddEdge(v, v + 1);
  for (NodeId v = 10; v < 20; ++v) g.AddEdge(v, v == 19 ? 10 : v + 1);
  SpanningForestSketch sk(21, TestForestOptions(), 13);
  Feed(&sk, g);
  Graph forest = sk.ExtractForest();
  EXPECT_EQ(forest.NumComponents(), 3u);
  EXPECT_EQ(forest.NumEdges(), 9u + 9u);
  EXPECT_TRUE(g.ContainsEdgesOf(forest));
}

TEST(SpanningForest, EmptyGraph) {
  SpanningForestSketch sk(10, TestForestOptions(), 17);
  Graph forest = sk.ExtractForest();
  EXPECT_EQ(forest.NumEdges(), 0u);
  EXPECT_EQ(forest.NumComponents(), 10u);
}

TEST(SpanningForest, SurvivesChurn) {
  Graph g = GridGraph(5, 5);
  auto stream = DynamicGraphStream::FromGraph(g);
  Rng rng(3);
  auto churned = stream.WithChurn(80, &rng);
  SpanningForestSketch sk(25, TestForestOptions(), 19);
  churned.Replay([&sk](NodeId u, NodeId v, int64_t d) { sk.Update(u, v, d); });
  Graph forest = sk.ExtractForest();
  EXPECT_EQ(forest.NumComponents(), 1u);
  EXPECT_TRUE(g.ContainsEdgesOf(forest)) << "sampled a deleted edge";
}

TEST(SpanningForest, DistributedMergeConnectivity) {
  Graph g = ErdosRenyi(40, 0.25, 5);
  auto stream = DynamicGraphStream::FromGraph(g);
  Rng rng(7);
  auto parts = stream.Partition(3, &rng);
  std::vector<SpanningForestSketch> sketches;
  for (int i = 0; i < 3; ++i) {
    sketches.emplace_back(40, TestForestOptions(), 23);  // same seed!
    parts[i].Replay([&](NodeId u, NodeId v, int64_t d) {
      sketches.back().Update(u, v, d);
    });
  }
  sketches[0].Merge(sketches[1]);
  sketches[0].Merge(sketches[2]);
  Graph forest = sketches[0].ExtractForest();
  EXPECT_EQ(forest.NumComponents(), g.NumComponents());
}

TEST(SpanningForest, CountComponentsAgainstTruth) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    Graph g = ErdosRenyi(48, 0.05, seed);
    SpanningForestSketch sk(48, TestForestOptions(), 100 + seed);
    Feed(&sk, g);
    EXPECT_EQ(sk.CountComponents(), g.NumComponents()) << seed;
  }
}

TEST(KEdgeConnect, WitnessContainsAllEdgesOfSmallCuts) {
  // Dumbbell with 2 bridges: both bridges participate in a cut of size 2,
  // so a k=3 witness must contain them.
  Graph g = Dumbbell(12, 0.8, 2, 7);
  KEdgeConnectSketch sk(24, 3, TestForestOptions(), 29);
  for (const auto& e : g.Edges()) sk.Update(e.u, e.v, 1);
  Graph witness = sk.ExtractWitness();
  EXPECT_TRUE(g.ContainsEdgesOf(witness));
  size_t bridges_found = 0;
  for (const auto& e : witness.Edges()) {
    if ((e.u < 12) != (e.v < 12)) ++bridges_found;
  }
  EXPECT_EQ(bridges_found, 2u);
}

TEST(KEdgeConnect, WitnessEdgeCountBounded) {
  Graph g = ErdosRenyi(30, 0.5, 9);
  constexpr uint32_t k = 4;
  KEdgeConnectSketch sk(30, k, TestForestOptions(), 31);
  for (const auto& e : g.Edges()) sk.Update(e.u, e.v, 1);
  Graph witness = sk.ExtractWitness();
  EXPECT_LE(witness.NumEdges(), static_cast<size_t>(k) * 29);
  EXPECT_TRUE(g.ContainsEdgesOf(witness));
}

TEST(KEdgeConnect, PreservesConnectivityCertificate) {
  // If G is connected, the witness must be connected (F_1 is spanning).
  Graph g = GridGraph(6, 5);
  KEdgeConnectSketch sk(30, 2, TestForestOptions(), 37);
  for (const auto& e : g.Edges()) sk.Update(e.u, e.v, 1);
  Graph witness = sk.ExtractWitness();
  EXPECT_EQ(witness.NumComponents(), 1u);
}

TEST(KEdgeConnect, DeletionsRespected) {
  // Insert a clique, delete everything except a path: witness must contain
  // exactly the path edges.
  constexpr NodeId n = 10;
  Graph clique = CompleteGraph(n);
  KEdgeConnectSketch sk(n, 2, TestForestOptions(), 41);
  for (const auto& e : clique.Edges()) sk.Update(e.u, e.v, 1);
  for (const auto& e : clique.Edges()) {
    bool path_edge = (e.v == e.u + 1);
    if (!path_edge) sk.Update(e.u, e.v, -1);
  }
  Graph witness = sk.ExtractWitness();
  EXPECT_EQ(witness.NumComponents(), 1u);
  for (const auto& e : witness.Edges()) {
    EXPECT_EQ(e.v, e.u + 1) << "witness contains a deleted edge";
  }
}

TEST(KEdgeConnect, MinCutEdgesAlwaysPresentAcrossSeeds) {
  // Witness property sweep: for a planted 3-bridge dumbbell and k=5, all
  // bridges must appear, for every seed.
  for (uint64_t seed = 0; seed < 5; ++seed) {
    Graph g = Dumbbell(10, 0.9, 3, 50 + seed);
    KEdgeConnectSketch sk(20, 5, TestForestOptions(), 60 + seed);
    for (const auto& e : g.Edges()) sk.Update(e.u, e.v, 1);
    Graph witness = sk.ExtractWitness();
    size_t bridges = 0;
    for (const auto& e : witness.Edges()) {
      if ((e.u < 10) != (e.v < 10)) ++bridges;
    }
    EXPECT_EQ(bridges, 3u) << seed;
  }
}

}  // namespace
}  // namespace gsketch
