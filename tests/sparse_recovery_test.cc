// Tests for k-RECOVERY (Theorem 2.2): exact recovery up to capacity, FAIL
// beyond it, linearity, and the subtraction path used by Fig. 3.
#include <gtest/gtest.h>

#include <map>

#include "src/hash/random.h"
#include "src/sketch/sparse_recovery.h"

namespace gsketch {
namespace {

TEST(SparseRecovery, EmptyDecodesToNothing) {
  SparseRecovery s(1 << 16, 8, 3, 1);
  auto r = s.Decode();
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.entries.empty());
  EXPECT_TRUE(s.IsZero());
}

TEST(SparseRecovery, RecoversExactVector) {
  SparseRecovery s(1 << 16, 8, 3, 2);
  std::map<uint64_t, int64_t> truth{{5, 2}, {1000, -7}, {60000, 1}, {31, 4}};
  for (const auto& [i, v] : truth) s.Update(i, v);
  auto r = s.Decode();
  ASSERT_TRUE(r.ok);
  ASSERT_EQ(r.entries.size(), truth.size());
  for (const auto& [i, v] : r.entries) {
    EXPECT_EQ(truth.at(i), v);
  }
}

TEST(SparseRecovery, RecoveryAtFullCapacity) {
  constexpr uint32_t kCap = 16;
  int ok_count = 0;
  for (uint64_t seed = 0; seed < 30; ++seed) {
    SparseRecovery s(1 << 18, kCap, 3, seed);
    Rng rng(seed + 100);
    std::map<uint64_t, int64_t> truth;
    while (truth.size() < kCap) truth[rng.Below(1 << 18)] = 1;
    for (const auto& [i, v] : truth) s.Update(i, v);
    auto r = s.Decode();
    if (r.ok && r.entries.size() == truth.size()) ++ok_count;
  }
  EXPECT_GE(ok_count, 27);  // w.h.p. successful at exactly k entries
}

TEST(SparseRecovery, FailsBeyondCapacity) {
  int failed = 0;
  for (uint64_t seed = 0; seed < 20; ++seed) {
    SparseRecovery s(1 << 18, 4, 3, seed);
    Rng rng(seed);
    for (int i = 0; i < 200; ++i) s.Update(rng.Below(1 << 18), 1);
    auto r = s.Decode();
    if (!r.ok) ++failed;
  }
  // 200 >> 2*4 buckets: peeling cannot complete.
  EXPECT_EQ(failed, 20);
}

TEST(SparseRecovery, DeletionsReduceToRecoverable) {
  SparseRecovery s(1 << 14, 4, 3, 7);
  for (uint64_t i = 0; i < 100; ++i) s.Update(i * 11, 1);
  for (uint64_t i = 0; i < 100; ++i) {
    if (i % 25 != 0) s.Update(i * 11, -1);  // leave 4 survivors
  }
  auto r = s.Decode();
  ASSERT_TRUE(r.ok);
  ASSERT_EQ(r.entries.size(), 4u);
  for (const auto& [i, v] : r.entries) {
    EXPECT_EQ(i % (11 * 25), 0u);
    EXPECT_EQ(v, 1);
  }
}

TEST(SparseRecovery, MergeEqualsSingleStream) {
  SparseRecovery a(4096, 8, 3, 9), b(4096, 8, 3, 9), whole(4096, 8, 3, 9);
  for (uint64_t i = 0; i < 6; ++i) {
    a.Update(i * 5, 1);
    whole.Update(i * 5, 1);
  }
  for (uint64_t i = 0; i < 2; ++i) {
    b.Update(1000 + i, 3);
    whole.Update(1000 + i, 3);
  }
  a.Merge(b);
  auto ra = a.Decode(), rw = whole.Decode();
  ASSERT_TRUE(ra.ok);
  ASSERT_TRUE(rw.ok);
  EXPECT_EQ(ra.entries, rw.entries);
}

TEST(SparseRecovery, SubtractRemovesOtherStream) {
  SparseRecovery a(4096, 8, 3, 10), b(4096, 8, 3, 10);
  a.Update(1, 1);
  a.Update(2, 2);
  b.Update(2, 2);
  a.Subtract(b);
  auto r = a.Decode();
  ASSERT_TRUE(r.ok);
  ASSERT_EQ(r.entries.size(), 1u);
  EXPECT_EQ(r.entries[0].first, 1u);
}

TEST(SparseRecovery, ZeroNetUpdatesDecodeEmpty) {
  SparseRecovery s(4096, 4, 3, 11);
  for (int rep = 0; rep < 10; ++rep) {
    s.Update(77, 1);
    s.Update(77, -1);
  }
  EXPECT_TRUE(s.IsZero());
  auto r = s.Decode();
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.entries.empty());
}

// Parameterized sweep: recovery success across (capacity, fill ratio).
class RecoverySweep
    : public ::testing::TestWithParam<std::tuple<uint32_t, double>> {};

TEST_P(RecoverySweep, RecoversWhenUnderCapacity) {
  auto [cap, fill] = GetParam();
  size_t support = static_cast<size_t>(cap * fill);
  if (support == 0) support = 1;
  int ok_count = 0;
  constexpr int kTrials = 20;
  for (int t = 0; t < kTrials; ++t) {
    SparseRecovery s(1 << 16, cap, 3, 100 * cap + t);
    Rng rng(t);
    std::map<uint64_t, int64_t> truth;
    while (truth.size() < support) {
      truth[rng.Below(1 << 16)] = static_cast<int64_t>(rng.Below(9)) - 4;
    }
    for (auto it = truth.begin(); it != truth.end();) {
      if (it->second == 0) {
        it = truth.erase(it);
      } else {
        ++it;
      }
    }
    for (const auto& [i, v] : truth) s.Update(i, v);
    auto r = s.Decode();
    if (r.ok && r.entries.size() == truth.size()) ++ok_count;
  }
  EXPECT_GE(ok_count, kTrials - 2);
}

INSTANTIATE_TEST_SUITE_P(
    CapacityAndFill, RecoverySweep,
    ::testing::Combine(::testing::Values<uint32_t>(4, 16, 64),
                       ::testing::Values(0.25, 0.5, 1.0)));

}  // namespace
}  // namespace gsketch
