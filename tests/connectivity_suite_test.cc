// Tests for the [4] connectivity toolkit: connectivity, bipartiteness,
// approximate MST weight, and k-connectivity testing.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/core/connectivity_suite.h"
#include "src/graph/generators.h"
#include "src/graph/stream.h"
#include "src/graph/union_find.h"
#include "src/hash/random.h"

namespace gsketch {
namespace {

ForestOptions Opt() {
  ForestOptions o;
  o.repetitions = 6;
  return o;
}

TEST(Connectivity, TracksComponentsUnderDeletions) {
  ConnectivitySketch sk(12, Opt(), 1);
  // A 12-cycle: connected.
  for (NodeId v = 0; v < 12; ++v) sk.Update(v, (v + 1) % 12, 1);
  EXPECT_TRUE(sk.IsConnected());
  // Cut it twice: two paths.
  sk.Update(0, 1, -1);
  sk.Update(6, 7, -1);
  EXPECT_EQ(sk.NumComponents(), 2u);
  EXPECT_FALSE(sk.IsConnected());
}

TEST(Connectivity, ForestIsValidWitness) {
  Graph g = ErdosRenyi(30, 0.2, 3);
  ConnectivitySketch sk(30, Opt(), 5);
  for (const auto& e : g.Edges()) sk.Update(e.u, e.v, 1);
  Graph f = sk.Forest();
  EXPECT_TRUE(g.ContainsEdgesOf(f));
  EXPECT_EQ(f.NumComponents(), g.NumComponents());
  // A forest: edges = n - components.
  EXPECT_EQ(f.NumEdges(), 30u - f.NumComponents());
}

TEST(Bipartiteness, EvenCycleYes) {
  BipartitenessSketch sk(8, Opt(), 7);
  for (NodeId v = 0; v < 8; ++v) sk.Update(v, (v + 1) % 8, 1);
  EXPECT_TRUE(sk.IsBipartite());
}

TEST(Bipartiteness, OddCycleNo) {
  BipartitenessSketch sk(7, Opt(), 9);
  for (NodeId v = 0; v < 7; ++v) sk.Update(v, (v + 1) % 7, 1);
  EXPECT_FALSE(sk.IsBipartite());
}

TEST(Bipartiteness, CompleteBipartiteYes) {
  Graph g = CompleteBipartite(5, 6);
  BipartitenessSketch sk(11, Opt(), 11);
  for (const auto& e : g.Edges()) sk.Update(e.u, e.v, 1);
  EXPECT_TRUE(sk.IsBipartite());
}

TEST(Bipartiteness, TriangleDetectedInLargeBipartiteGraph) {
  Graph g = CompleteBipartite(6, 6);
  BipartitenessSketch sk(12, Opt(), 13);
  for (const auto& e : g.Edges()) sk.Update(e.u, e.v, 1);
  EXPECT_TRUE(sk.IsBipartite());
  // Add one same-side edge: creates an odd cycle.
  sk.Update(0, 1, 1);
  EXPECT_FALSE(sk.IsBipartite());
  // Deleting it restores bipartiteness (linearity).
  sk.Update(0, 1, -1);
  EXPECT_TRUE(sk.IsBipartite());
}

TEST(Bipartiteness, DeletionMakesBipartite) {
  // Odd cycle -> delete one edge -> path (bipartite).
  BipartitenessSketch sk(5, Opt(), 15);
  for (NodeId v = 0; v < 5; ++v) sk.Update(v, (v + 1) % 5, 1);
  EXPECT_FALSE(sk.IsBipartite());
  sk.Update(4, 0, -1);
  EXPECT_TRUE(sk.IsBipartite());
}

TEST(Bipartiteness, MixedComponents) {
  // One even cycle + one odd cycle: not bipartite overall.
  BipartitenessSketch sk(9, Opt(), 17);
  for (NodeId v = 0; v < 4; ++v) sk.Update(v, (v + 1) % 4, 1);
  for (NodeId v = 4; v < 9; ++v) sk.Update(v, v + 1 == 9 ? 4 : v + 1, 1);
  EXPECT_FALSE(sk.IsBipartite());
}

TEST(ApproxMst, ExactOnUnitWeights) {
  // Unit weights: MST weight = n - components.
  Graph g = ErdosRenyi(24, 0.3, 19);
  ApproxMstSketch sk(24, 1, 0.5, Opt(), 21);
  for (const auto& e : g.Edges()) sk.Update(e.u, e.v, 1, 1);
  double expected = static_cast<double>(24 - g.NumComponents());
  EXPECT_DOUBLE_EQ(sk.EstimateWeight(), expected);
}

TEST(ApproxMst, PathWithKnownWeights) {
  // Path 0-1-2-3 with weights 1, 2, 4: MST = the path itself, weight 7.
  // Thresholds are exact powers here, so the estimate is exact.
  ApproxMstSketch sk(4, 4, 1.0, Opt(), 23);
  sk.Update(0, 1, 1, 1);
  sk.Update(1, 2, 1, 2);
  sk.Update(2, 3, 1, 4);
  EXPECT_DOUBLE_EQ(sk.EstimateWeight(), 7.0);
}

TEST(ApproxMst, HeavyEdgeAvoidedWhenCheapCycleExists) {
  // Cycle with one heavy edge: MST uses the cheap edges only.
  ApproxMstSketch sk(4, 64, 1.0, Opt(), 25);
  sk.Update(0, 1, 1, 1);
  sk.Update(1, 2, 1, 1);
  sk.Update(2, 3, 1, 1);
  sk.Update(3, 0, 1, 64);  // heavy chord, not needed
  EXPECT_DOUBLE_EQ(sk.EstimateWeight(), 3.0);
}

TEST(ApproxMst, WithinOnePlusEpsilonOnRandomGraphs) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    Graph g = ErdosRenyi(20, 0.4, seed);
    if (g.NumComponents() != 1) continue;
    Graph w = WithRandomWeights(g, 30, seed + 50);
    // Exact MST via Kruskal on the materialized graph.
    std::vector<WeightedEdge> edges = w.Edges();
    std::sort(edges.begin(), edges.end(),
              [](const WeightedEdge& a, const WeightedEdge& b) {
                return a.weight < b.weight;
              });
    UnionFind uf(20);
    double exact = 0;
    for (const auto& e : edges) {
      if (uf.Union(e.u, e.v)) exact += e.weight;
    }
    double eps = 0.25;
    ApproxMstSketch sk(20, 30, eps, Opt(), seed + 100);
    for (const auto& e : w.Edges()) {
      sk.Update(e.u, e.v, 1, static_cast<int64_t>(e.weight));
    }
    double est = sk.EstimateWeight();
    EXPECT_GE(est, exact * 0.999) << seed;  // never underestimates
    EXPECT_LE(est, exact * (1 + eps) + 1e-9) << seed;
  }
}

TEST(ApproxMst, DisconnectedGivesForestWeight) {
  ApproxMstSketch sk(6, 4, 1.0, Opt(), 27);
  sk.Update(0, 1, 1, 2);
  sk.Update(3, 4, 1, 4);
  EXPECT_DOUBLE_EQ(sk.EstimateWeight(), 6.0);
}

TEST(KConnectivity, DetectsExactThreshold) {
  // Dumbbell with 3 bridges: 3-edge-connected across the middle is false
  // for k=4, true for... the global min cut is 3 (assuming dense halves).
  Graph g = Dumbbell(10, 0.9, 3, 29);
  for (uint32_t k : {2u, 3u}) {
    KConnectivityTester sk(20, k + 1, Opt(), 31 + k);
    for (const auto& e : g.Edges()) sk.Update(e.u, e.v, 1);
    // min cut = 3: k-connected for k <= 3.
    EXPECT_EQ(sk.WitnessMinCut(), 3.0);
  }
  KConnectivityTester exactly(20, 3, Opt(), 37);
  for (const auto& e : g.Edges()) exactly.Update(e.u, e.v, 1);
  EXPECT_TRUE(exactly.IsKConnected());
  KConnectivityTester over(20, 4, Opt(), 39);
  for (const auto& e : g.Edges()) over.Update(e.u, e.v, 1);
  EXPECT_FALSE(over.IsKConnected());
}

TEST(KConnectivity, DisconnectedNeverKConnected) {
  KConnectivityTester sk(8, 1, Opt(), 41);
  sk.Update(0, 1, 1);
  sk.Update(2, 3, 1);
  EXPECT_FALSE(sk.IsKConnected());
  EXPECT_DOUBLE_EQ(sk.WitnessMinCut(), 0.0);
}

TEST(Suite, DistributedMergeAllSketches) {
  Graph g = ErdosRenyi(20, 0.3, 43);
  auto stream = DynamicGraphStream::FromGraph(g);
  Rng rng(45);
  auto parts = stream.Partition(2, &rng);

  BipartitenessSketch ba(20, Opt(), 47), bb(20, Opt(), 47),
      bw(20, Opt(), 47);
  ApproxMstSketch ma(20, 1, 0.5, Opt(), 49), mb(20, 1, 0.5, Opt(), 49),
      mw(20, 1, 0.5, Opt(), 49);
  parts[0].Replay([&](NodeId u, NodeId v, int64_t d) {
    ba.Update(u, v, d);
    ma.Update(u, v, d, 1);
  });
  parts[1].Replay([&](NodeId u, NodeId v, int64_t d) {
    bb.Update(u, v, d);
    mb.Update(u, v, d, 1);
  });
  stream.Replay([&](NodeId u, NodeId v, int64_t d) {
    bw.Update(u, v, d);
    mw.Update(u, v, d, 1);
  });
  ba.Merge(bb);
  ma.Merge(mb);
  EXPECT_EQ(ba.IsBipartite(), bw.IsBipartite());
  EXPECT_DOUBLE_EQ(ma.EstimateWeight(), mw.EstimateWeight());
}

}  // namespace
}  // namespace gsketch
