// Tests for SIMPLE-SPARSIFICATION (Fig. 2), SPARSIFICATION (Fig. 3), and
// the weighted variant (Sec 3.5).
#include <gtest/gtest.h>

#include "src/core/simple_sparsifier.h"
#include "src/core/sparsifier.h"
#include "src/core/weighted_sparsifier.h"
#include "src/graph/cuts.h"
#include "src/graph/generators.h"
#include "src/graph/stream.h"
#include "src/hash/random.h"

namespace gsketch {
namespace {

SimpleSparsifierOptions SimpleOptions(uint32_t k = 8) {
  SimpleSparsifierOptions opt;
  opt.k_override = k;
  opt.forest.repetitions = 5;
  return opt;
}

void Feed(SimpleSparsifier* sk, const Graph& g) {
  for (const auto& e : g.Edges()) {
    sk->Update(e.u, e.v, static_cast<int64_t>(e.weight));
  }
}

TEST(SimpleSparsifier, SparseGraphReproducedExactly) {
  // When every edge connectivity is below k, level 0 keeps every edge with
  // weight 2^0 = 1: the sparsifier IS the graph.
  Graph g = GridGraph(5, 5);  // max connectivity 4 < k
  SimpleSparsifier sk(25, SimpleOptions(8), 3);
  Feed(&sk, g);
  Graph h = sk.Extract();
  EXPECT_EQ(h.NumEdges(), g.NumEdges());
  for (const auto& e : h.Edges()) {
    EXPECT_DOUBLE_EQ(e.weight, 1.0);
    EXPECT_TRUE(g.HasEdge(e.u, e.v));
  }
}

TEST(SimpleSparsifier, AllCutsWithinToleranceSmallGraph) {
  Graph g = ErdosRenyi(14, 0.5, 5);
  SimpleSparsifier sk(14, SimpleOptions(10), 7);
  Feed(&sk, g);
  Graph h = sk.Extract();
  auto stats = CompareCuts(g, h, EnumerateAllCuts(14));
  // k=10 on a 14-node graph: moderate approximation; cuts must be close.
  EXPECT_LT(stats.max_rel_error, 0.6);
  EXPECT_LT(stats.avg_rel_error, 0.25);
}

TEST(SimpleSparsifier, SparsifiesDenseGraph) {
  Graph g = CompleteGraph(40);
  SimpleSparsifier sk(40, SimpleOptions(8), 9);
  Feed(&sk, g);
  Graph h = sk.Extract();
  EXPECT_LT(h.NumEdges(), g.NumEdges());
  // Total weight approximates total edge mass.
  EXPECT_NEAR(h.TotalWeight(), g.TotalWeight(), 0.6 * g.TotalWeight());
  Rng rng(11);
  auto stats = CompareCuts(g, h, RandomCuts(40, 60, &rng));
  EXPECT_LT(stats.max_rel_error, 0.8);
}

TEST(SimpleSparsifier, OnlyGraphEdgesAppear) {
  Graph g = ErdosRenyi(20, 0.4, 13);
  SimpleSparsifier sk(20, SimpleOptions(6), 15);
  Feed(&sk, g);
  Graph h = sk.Extract();
  EXPECT_TRUE(g.ContainsEdgesOf(h));
}

TEST(SimpleSparsifier, ChurnDoesNotPolluteSparsifier) {
  Graph g = GridGraph(4, 5);
  auto stream = DynamicGraphStream::FromGraph(g);
  Rng rng(17);
  auto churned = stream.WithChurn(60, &rng);
  SimpleSparsifier sk(20, SimpleOptions(8), 19);
  churned.Replay([&sk](NodeId u, NodeId v, int64_t d) { sk.Update(u, v, d); });
  Graph h = sk.Extract();
  EXPECT_TRUE(g.ContainsEdgesOf(h)) << "deleted edge leaked into sparsifier";
  EXPECT_EQ(h.NumEdges(), g.NumEdges());
}

TEST(SimpleSparsifier, DistributedMergeMatchesSingleSketch) {
  Graph g = ErdosRenyi(16, 0.5, 21);
  auto stream = DynamicGraphStream::FromGraph(g);
  Rng rng(23);
  auto parts = stream.Partition(3, &rng);
  SimpleSparsifier s0(16, SimpleOptions(6), 25), s1(16, SimpleOptions(6), 25),
      s2(16, SimpleOptions(6), 25), whole(16, SimpleOptions(6), 25);
  parts[0].Replay([&](NodeId u, NodeId v, int64_t d) { s0.Update(u, v, d); });
  parts[1].Replay([&](NodeId u, NodeId v, int64_t d) { s1.Update(u, v, d); });
  parts[2].Replay([&](NodeId u, NodeId v, int64_t d) { s2.Update(u, v, d); });
  stream.Replay(
      [&](NodeId u, NodeId v, int64_t d) { whole.Update(u, v, d); });
  s0.Merge(s1);
  s0.Merge(s2);
  Graph hm = s0.Extract(), hw = whole.Extract();
  EXPECT_EQ(hm.NumEdges(), hw.NumEdges());
  for (const auto& e : hw.Edges()) {
    EXPECT_DOUBLE_EQ(hm.EdgeWeight(e.u, e.v), e.weight);
  }
}

SparsifierOptions BetterOptions() {
  SparsifierOptions opt;
  opt.k_override = 12;
  opt.rows = 3;
  opt.rough.k_override = 6;
  opt.rough.forest.repetitions = 5;
  return opt;
}

TEST(Sparsifier, SparseGraphCutsPreserved) {
  Graph g = GridGraph(5, 4);
  Sparsifier sk(20, BetterOptions(), 27);
  for (const auto& e : g.Edges()) sk.Update(e.u, e.v, 1);
  SparsifierStats stats;
  Graph h = sk.Extract(&stats);
  EXPECT_TRUE(g.ContainsEdgesOf(h));
  Rng rng(29);
  auto err = CompareCuts(g, h, BfsBallCuts(g, 30, &rng));
  EXPECT_LT(err.max_rel_error, 0.75);
  EXPECT_EQ(stats.recovery_failures, 0u);
}

TEST(Sparsifier, DenseGraphApproximatesCuts) {
  Graph g = ErdosRenyi(20, 0.6, 31);
  Sparsifier sk(20, BetterOptions(), 33);
  for (const auto& e : g.Edges()) sk.Update(e.u, e.v, 1);
  Graph h = sk.Extract();
  EXPECT_GT(h.NumEdges(), 0u);
  EXPECT_TRUE(g.ContainsEdgesOf(h));
  Rng rng(35);
  auto err = CompareCuts(g, h, RandomCuts(20, 40, &rng));
  EXPECT_LT(err.max_rel_error, 0.9);
  EXPECT_LT(err.avg_rel_error, 0.4);
}

TEST(Sparsifier, DeletionsRespected) {
  Graph g = CompleteGraph(12);
  Sparsifier sk(12, BetterOptions(), 37);
  for (const auto& e : g.Edges()) sk.Update(e.u, e.v, 1);
  // Delete everything except a ring.
  Graph ring(12);
  for (NodeId v = 0; v < 12; ++v) ring.AddEdge(v, (v + 1) % 12);
  for (const auto& e : g.Edges()) {
    if (!ring.HasEdge(e.u, e.v)) sk.Update(e.u, e.v, -1);
  }
  Graph h = sk.Extract();
  EXPECT_TRUE(ring.ContainsEdgesOf(h));
  // The ring is 2-edge-connected with tiny cuts; expect near-exact copy.
  Rng rng(39);
  auto err = CompareCuts(ring, h, BfsBallCuts(ring, 20, &rng));
  EXPECT_LT(err.max_rel_error, 0.5);
}

TEST(WeightedSparsifier, UniformWeightsMatchUnweightedBehavior) {
  Graph g = GridGraph(4, 4);
  WeightedSparsifier sk(16, /*max_weight=*/1, SimpleOptions(8), 41);
  for (const auto& e : g.Edges()) sk.Update(e.u, e.v, 1, 1);
  Graph h = sk.Extract();
  EXPECT_EQ(h.NumEdges(), g.NumEdges());
  for (const auto& e : h.Edges()) EXPECT_DOUBLE_EQ(e.weight, 1.0);
}

TEST(WeightedSparsifier, RecoversActualWeights) {
  Graph g = GridGraph(4, 4);
  Graph w = WithRandomWeights(g, 50, 43);
  WeightedSparsifier sk(16, 50, SimpleOptions(8), 45);
  for (const auto& e : w.Edges()) {
    sk.Update(e.u, e.v, 1, static_cast<int64_t>(e.weight));
  }
  Graph h = sk.Extract();
  // Sparse graph: every class keeps its edges at level 0 with true weight.
  EXPECT_EQ(h.NumEdges(), w.NumEdges());
  for (const auto& e : h.Edges()) {
    EXPECT_DOUBLE_EQ(e.weight, w.EdgeWeight(e.u, e.v));
  }
}

TEST(WeightedSparsifier, CutsApproximatedOnWeightedDenseGraph) {
  Graph g = ErdosRenyi(18, 0.5, 47);
  Graph w = WithRandomWeights(g, 15, 49);
  WeightedSparsifier sk(18, 15, SimpleOptions(8), 51);
  for (const auto& e : w.Edges()) {
    sk.Update(e.u, e.v, 1, static_cast<int64_t>(e.weight));
  }
  Graph h = sk.Extract();
  Rng rng(53);
  auto err = CompareCuts(w, h, RandomCuts(18, 40, &rng));
  EXPECT_LT(err.max_rel_error, 0.9);
}

}  // namespace
}  // namespace gsketch
