// Tests for the Section 4 subgraph sketch against the exact census.
#include <gtest/gtest.h>

#include <cmath>

#include "src/core/subgraph_patterns.h"
#include "src/core/subgraph_sketch.h"
#include "src/graph/generators.h"
#include "src/graph/stream.h"
#include "src/graph/subgraph_census.h"
#include "src/hash/random.h"

namespace gsketch {
namespace {

void Feed(SubgraphSketch* sk, const Graph& g) {
  for (const auto& e : g.Edges()) sk->Update(e.u, e.v, 1);
}

TEST(Patterns, CanonicalCodesDistinct) {
  auto p3 = Order3Patterns();
  EXPECT_EQ(p3.size(), 3u);
  std::set<uint32_t> codes3;
  for (const auto& p : p3) codes3.insert(p.canonical_code);
  EXPECT_EQ(codes3.size(), 3u);
  auto p4 = Order4Patterns();
  EXPECT_EQ(p4.size(), 10u);
  std::set<uint32_t> codes4;
  for (const auto& p : p4) codes4.insert(p.canonical_code);
  EXPECT_EQ(codes4.size(), 10u);
}

TEST(Patterns, NamesRoundTrip) {
  EXPECT_EQ(PatternName(3, TriangleCode()), "triangle");
  EXPECT_EQ(PatternName(4, Clique4Code()), "4-clique");
}

TEST(SubgraphSketch, CompleteGraphIsAllTriangles) {
  Graph g = CompleteGraph(12);
  SubgraphSketch sk(12, 3, /*samplers=*/30, /*reps=*/6, 1);
  Feed(&sk, g);
  auto est = sk.EstimateGamma(TriangleCode());
  EXPECT_GT(est.samples_used, 20u);
  EXPECT_DOUBLE_EQ(est.gamma, 1.0);  // every non-empty triple is a triangle
}

TEST(SubgraphSketch, StarHasNoTriangles) {
  Graph g(12);
  for (NodeId v = 1; v < 12; ++v) g.AddEdge(0, v);
  SubgraphSketch sk(12, 3, 30, 6, 2);
  Feed(&sk, g);
  auto est = sk.EstimateGamma(TriangleCode());
  EXPECT_DOUBLE_EQ(est.gamma, 0.0);
  // But wedges dominate.
  auto wedge = sk.EstimateGamma(WedgeCode());
  EXPECT_GT(wedge.gamma, 0.3);
}

TEST(SubgraphSketch, MatchesCensusWithinAdditiveError) {
  Graph g = ErdosRenyi(24, 0.3, 3);
  auto census = CensusOrder3(g);
  SubgraphSketch sk(24, 3, 200, 6, 4);
  Feed(&sk, g);
  for (const auto& p : Order3Patterns()) {
    double truth = census.Gamma(p.canonical_code);
    auto est = sk.EstimateGamma(p.canonical_code);
    // 200 samples: additive error ~ 1/sqrt(200) ≈ 0.07; allow 4 sigma.
    EXPECT_NEAR(est.gamma, truth, 0.20) << p.name;
  }
}

TEST(SubgraphSketch, DistributionSumsToOne) {
  Graph g = ErdosRenyi(20, 0.25, 5);
  SubgraphSketch sk(20, 3, 60, 6, 6);
  Feed(&sk, g);
  auto dist = sk.EstimateDistribution();
  double total = 0;
  for (const auto& [code, mass] : dist) {
    (void)code;
    total += mass;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(SubgraphSketch, DeletionsChangeEstimate) {
  // Complete graph (γ_triangle = 1), then delete down to a star
  // (γ_triangle = 0). The linear sketch must track the final graph.
  Graph g = CompleteGraph(10);
  SubgraphSketch sk(10, 3, 40, 6, 7);
  Feed(&sk, g);
  for (const auto& e : g.Edges()) {
    if (e.u != 0) sk.Update(e.u, e.v, -1);
  }
  auto tri = sk.EstimateGamma(TriangleCode());
  EXPECT_DOUBLE_EQ(tri.gamma, 0.0);
  auto wedge = sk.EstimateGamma(WedgeCode());
  EXPECT_GT(wedge.gamma, 0.3);
}

TEST(SubgraphSketch, EmptyGraphProducesNoSamples) {
  SubgraphSketch sk(10, 3, 20, 6, 8);
  auto est = sk.EstimateGamma(TriangleCode());
  EXPECT_EQ(est.samples_used, 0u);
  EXPECT_DOUBLE_EQ(est.gamma, 0.0);
}

TEST(SubgraphSketch, MergeMatchesSingleStream) {
  Graph g = ErdosRenyi(16, 0.3, 9);
  auto stream = DynamicGraphStream::FromGraph(g);
  Rng rng(10);
  auto parts = stream.Partition(2, &rng);
  SubgraphSketch a(16, 3, 25, 6, 11), b(16, 3, 25, 6, 11),
      whole(16, 3, 25, 6, 11);
  parts[0].Replay([&a](NodeId u, NodeId v, int64_t d) { a.Update(u, v, d); });
  parts[1].Replay([&b](NodeId u, NodeId v, int64_t d) { b.Update(u, v, d); });
  stream.Replay(
      [&whole](NodeId u, NodeId v, int64_t d) { whole.Update(u, v, d); });
  a.Merge(b);
  EXPECT_EQ(a.SampleCanonicalCodes(), whole.SampleCanonicalCodes());
}

TEST(SubgraphSketch, Order4CliqueDetection) {
  Graph g = CompleteGraph(8);
  SubgraphSketch sk(8, 4, 25, 6, 12);
  Feed(&sk, g);
  auto est = sk.EstimateGamma(Clique4Code());
  EXPECT_DOUBLE_EQ(est.gamma, 1.0);
}

TEST(SubgraphSketch, Order4MatchesCensus) {
  Graph g = ErdosRenyi(14, 0.35, 13);
  auto census = CensusOrder4(g);
  SubgraphSketch sk(14, 4, 150, 6, 14);
  Feed(&sk, g);
  for (const auto& p : Order4Patterns()) {
    double truth = census.Gamma(p.canonical_code);
    auto est = sk.EstimateGamma(p.canonical_code);
    EXPECT_NEAR(est.gamma, truth, 0.22) << p.name;
  }
}

TEST(SubgraphSketch, NonEmptyEstimateWithinConstantFactor) {
  Graph g = ErdosRenyi(24, 0.3, 21);
  auto census = CensusOrder3(g);
  SubgraphSketch sk(24, 3, 10, 6, 22);
  Feed(&sk, g);
  uint64_t truth = census.NonEmpty();
  uint64_t est = sk.EstimateNonEmpty();
  EXPECT_GE(est, truth / 16);
  EXPECT_LE(est, truth * 16);
}

TEST(SubgraphSketch, CountEstimateTracksTrend) {
  // Footnote 1: absolute counts via gamma * non-empty. The estimate is a
  // trend signal (constant-factor in the support term); a planted clique
  // must raise the triangle-count estimate by a large factor.
  Graph sparse = ErdosRenyi(32, 0.05, 23);
  SubgraphSketch before(32, 3, 100, 6, 24);
  Feed(&before, sparse);
  double count_before = before.EstimateCount(TriangleCode());

  Graph with_clique = sparse;
  for (NodeId u = 0; u < 10; ++u) {
    for (NodeId v = u + 1; v < 10; ++v) {
      if (!with_clique.HasEdge(u, v)) with_clique.AddEdge(u, v);
    }
  }
  SubgraphSketch after(32, 3, 100, 6, 24);
  Feed(&after, with_clique);
  double count_after = after.EstimateCount(TriangleCode());
  EXPECT_GT(count_after, count_before * 4 + 10);
}

TEST(SubgraphSketch, TriangleDensityTracksPlantedClique) {
  // Sparse background + planted clique raises triangle fraction.
  Graph g = ErdosRenyi(30, 0.05, 15);
  for (NodeId u = 0; u < 8; ++u) {
    for (NodeId v = u + 1; v < 8; ++v) {
      if (!g.HasEdge(u, v)) g.AddEdge(u, v);
    }
  }
  auto census = CensusOrder3(g);
  SubgraphSketch sk(30, 3, 150, 6, 16);
  Feed(&sk, g);
  auto est = sk.EstimateGamma(TriangleCode());
  EXPECT_NEAR(est.gamma, census.Gamma(TriangleCode()), 0.15);
  EXPECT_GT(est.gamma, 0.02);
}

}  // namespace
}  // namespace gsketch
