// Tests for the exact subgraph census, cut utilities, and spanner checker.
#include <gtest/gtest.h>

#include "src/core/subgraph_patterns.h"
#include "src/graph/cuts.h"
#include "src/graph/generators.h"
#include "src/graph/spanner_check.h"
#include "src/graph/subgraph_census.h"
#include "src/hash/random.h"

namespace gsketch {
namespace {

// Brute-force order-3 census for cross-checking the formula-based one.
SubgraphCensus BruteCensus3(const Graph& g) {
  SubgraphCensus c;
  c.order = 3;
  NodeId n = g.NumNodes();
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = a + 1; b < n; ++b) {
      for (NodeId d = b + 1; d < n; ++d) {
        uint32_t code = 0;
        if (g.HasEdge(a, b)) code |= 1u << PairSlot(0, 1);
        if (g.HasEdge(a, d)) code |= 1u << PairSlot(0, 2);
        if (g.HasEdge(b, d)) code |= 1u << PairSlot(1, 2);
        if (code != 0) ++c.counts[CanonicalPatternCode(code, 3)];
      }
    }
  }
  return c;
}

TEST(Canonical, TriangleIsItsOwnClass) {
  EXPECT_EQ(CanonicalPatternCode(0b111, 3), 0b111u);
}

TEST(Canonical, AllSingleEdgesCollapse) {
  uint32_t canon = CanonicalPatternCode(0b001, 3);
  EXPECT_EQ(CanonicalPatternCode(0b010, 3), canon);
  EXPECT_EQ(CanonicalPatternCode(0b100, 3), canon);
}

TEST(Canonical, AllWedgesCollapse) {
  uint32_t canon = CanonicalPatternCode(0b011, 3);
  EXPECT_EQ(CanonicalPatternCode(0b101, 3), canon);
  EXPECT_EQ(CanonicalPatternCode(0b110, 3), canon);
}

TEST(Canonical, Order4ClassCountIsEleven) {
  std::set<uint32_t> classes;
  for (uint32_t code = 0; code < 64; ++code) {
    classes.insert(CanonicalPatternCode(code, 4));
  }
  EXPECT_EQ(classes.size(), 11u);  // incl. the empty graph
}

TEST(Census3, TriangleGraph) {
  Graph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(0, 2);
  auto c = CensusOrder3(g);
  EXPECT_EQ(c.counts.at(TriangleCode()), 1u);
  EXPECT_EQ(c.NonEmpty(), 1u);
  EXPECT_DOUBLE_EQ(c.Gamma(TriangleCode()), 1.0);
}

TEST(Census3, MatchesBruteForce) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    Graph g = ErdosRenyi(40, 0.15, seed);
    auto fast = CensusOrder3(g);
    auto brute = BruteCensus3(g);
    EXPECT_EQ(fast.counts, brute.counts) << seed;
  }
}

TEST(Census3, CompleteGraphAllTriangles) {
  Graph g = CompleteGraph(10);
  auto c = CensusOrder3(g);
  EXPECT_EQ(c.counts.at(TriangleCode()), Binomial(10, 3));
  EXPECT_DOUBLE_EQ(c.Gamma(TriangleCode()), 1.0);
}

TEST(Census3, StarGraphAllWedges) {
  Graph g(6);
  for (NodeId v = 1; v < 6; ++v) g.AddEdge(0, v);
  auto c = CensusOrder3(g);
  EXPECT_EQ(c.counts.at(WedgeCode()), Binomial(5, 2));
  // Every triple containing an edge contains the center, so it is a wedge:
  // there are no single-edge triples in a star.
  EXPECT_EQ(c.counts.at(SingleEdge3Code()), 0u);
}

TEST(Census4, CompleteGraph) {
  Graph g = CompleteGraph(8);
  auto c = CensusOrder4(g);
  EXPECT_EQ(c.counts.at(Clique4Code()), Binomial(8, 4));
  EXPECT_EQ(c.NonEmpty(), Binomial(8, 4));
}

TEST(Census4, CycleGraphContainsPathsNotCliques) {
  Graph g(8);
  for (NodeId v = 0; v < 8; ++v) g.AddEdge(v, (v + 1) % 8);
  auto c = CensusOrder4(g);
  EXPECT_EQ(c.counts.count(Clique4Code()), 0u);
  EXPECT_GT(c.counts.at(PatternCode(4, {{0, 1}, {1, 2}, {2, 3}})), 0u);
  // Exactly two disjoint-edge pairs per ... at least some matchings.
  EXPECT_GT(c.counts.at(PatternCode(4, {{0, 1}, {2, 3}})), 0u);
}

TEST(Cuts, CutValueBasics) {
  Graph g(4);
  g.AddEdge(0, 1, 2.0);
  g.AddEdge(1, 2, 3.0);
  g.AddEdge(2, 3, 4.0);
  std::vector<bool> side{true, true, false, false};
  EXPECT_DOUBLE_EQ(CutValue(g, side), 3.0);
}

TEST(Cuts, EnumerateAllCutsCount) {
  auto cuts = EnumerateAllCuts(5);
  EXPECT_EQ(cuts.size(), 15u);  // 2^4 - 1
}

TEST(Cuts, RandomAndBallFamiliesAreProper) {
  Graph g = ErdosRenyi(30, 0.2, 3);
  Rng rng(4);
  for (const auto& side : RandomCuts(30, 20, &rng)) {
    size_t c = 0;
    for (bool b : side) c += b;
    EXPECT_GT(c, 0u);
    EXPECT_LT(c, 30u);
  }
  for (const auto& side : BfsBallCuts(g, 20, &rng)) {
    size_t c = 0;
    for (bool b : side) c += b;
    EXPECT_GT(c, 0u);
    EXPECT_LT(c, 30u);
  }
}

TEST(Cuts, CompareCutsIdentityIsZeroError) {
  Graph g = ErdosRenyi(20, 0.3, 5);
  Rng rng(6);
  auto stats = CompareCuts(g, g, RandomCuts(20, 50, &rng));
  EXPECT_DOUBLE_EQ(stats.max_rel_error, 0.0);
  EXPECT_EQ(stats.cuts_checked + stats.zero_cuts_skipped, 50u);
}

TEST(Cuts, CompareCutsDetectsScaledGraph) {
  Graph g = CompleteGraph(10);
  Graph h(10);
  for (const auto& e : g.Edges()) h.AddEdge(e.u, e.v, 1.5 * e.weight);
  Rng rng(7);
  auto stats = CompareCuts(g, h, RandomCuts(10, 20, &rng));
  EXPECT_NEAR(stats.max_rel_error, 0.5, 1e-9);
}

TEST(SpannerCheck, IdentityHasStretchOne) {
  Graph g = GridGraph(5, 5);
  auto s = CheckSpanner(g, g, 0, 1);
  EXPECT_DOUBLE_EQ(s.max_stretch, 1.0);
  EXPECT_TRUE(s.is_subgraph);
  EXPECT_EQ(s.disconnected_pairs, 0u);
}

TEST(SpannerCheck, SpanningTreeOfCycleStretch) {
  Graph g(6);
  for (NodeId v = 0; v < 6; ++v) g.AddEdge(v, (v + 1) % 6);
  Graph h(6);
  for (NodeId v = 0; v < 5; ++v) h.AddEdge(v, v + 1);  // drop one edge
  auto s = CheckSpanner(g, h, 0, 1);
  EXPECT_DOUBLE_EQ(s.max_stretch, 5.0);  // the removed edge's endpoints
  EXPECT_TRUE(s.is_subgraph);
}

TEST(SpannerCheck, DetectsNonSubgraph) {
  Graph g(4), h(4);
  g.AddEdge(0, 1);
  h.AddEdge(0, 1);
  h.AddEdge(2, 3);  // not in g
  auto s = CheckSpanner(g, h, 0, 1);
  EXPECT_FALSE(s.is_subgraph);
}

TEST(SpannerCheck, CountsDisconnectedPairs) {
  Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  Graph h(4);
  h.AddEdge(0, 1);  // 2 unreachable in h
  auto s = CheckSpanner(g, h, 0, 1);
  EXPECT_GT(s.disconnected_pairs, 0u);
}

}  // namespace
}  // namespace gsketch
