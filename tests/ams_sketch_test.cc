// Tests for the AMS tug-of-war F2 sketch.
#include <gtest/gtest.h>

#include <map>

#include "src/hash/random.h"
#include "src/sketch/ams_sketch.h"

namespace gsketch {
namespace {

TEST(Ams, ZeroVector) {
  AmsSketch s(5, 32, 1);
  EXPECT_DOUBLE_EQ(s.EstimateF2(), 0.0);
}

TEST(Ams, SingletonExact) {
  AmsSketch s(5, 32, 2);
  s.Update(42, 7);
  // One nonzero entry: every projection is ±7, F2 estimate exactly 49.
  EXPECT_DOUBLE_EQ(s.EstimateF2(), 49.0);
}

TEST(Ams, EstimatesWithinRelativeError) {
  Rng rng(3);
  std::map<uint64_t, int64_t> x;
  for (int i = 0; i < 500; ++i) {
    x[rng.Below(1 << 20)] += static_cast<int64_t>(rng.Below(9)) - 4;
  }
  double truth = 0;
  for (const auto& [i, v] : x) {
    (void)i;
    truth += static_cast<double>(v) * v;
  }
  AmsSketch s(7, 256, 4);
  for (const auto& [i, v] : x) s.Update(i, v);
  EXPECT_NEAR(s.EstimateF2(), truth, 0.3 * truth);
}

TEST(Ams, DeletionsCancel) {
  AmsSketch s(5, 64, 5);
  for (uint64_t i = 0; i < 100; ++i) s.Update(i, 3);
  for (uint64_t i = 0; i < 100; ++i) s.Update(i, -3);
  EXPECT_DOUBLE_EQ(s.EstimateF2(), 0.0);
}

TEST(Ams, MergeEqualsSingleStream) {
  AmsSketch a(5, 64, 6), b(5, 64, 6), whole(5, 64, 6);
  for (uint64_t i = 0; i < 50; ++i) {
    a.Update(i, 1);
    whole.Update(i, 1);
  }
  for (uint64_t i = 25; i < 75; ++i) {
    b.Update(i, 2);
    whole.Update(i, 2);
  }
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.EstimateF2(), whole.EstimateF2());
}

TEST(Ams, ErrorShrinksWithColumns) {
  // Average relative error over seeds must shrink as columns grow.
  Rng rng(7);
  std::map<uint64_t, int64_t> x;
  for (int i = 0; i < 300; ++i) x[rng.Below(1 << 16)] += 1;
  double truth = 0;
  for (const auto& [i, v] : x) {
    (void)i;
    truth += static_cast<double>(v) * v;
  }
  auto avg_err = [&](uint32_t cols) {
    double total = 0;
    for (uint64_t seed = 0; seed < 8; ++seed) {
      AmsSketch s(5, cols, 100 + seed);
      for (const auto& [i, v] : x) s.Update(i, v);
      total += std::abs(s.EstimateF2() - truth) / truth;
    }
    return total / 8;
  };
  double coarse = avg_err(16);
  double fine = avg_err(256);
  EXPECT_LT(fine, coarse);
  EXPECT_LT(fine, 0.15);
}

}  // namespace
}  // namespace gsketch
