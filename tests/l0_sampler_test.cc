// Tests for the ℓ₀-sampler (Theorem 2.1): correctness of samples, deletion
// handling, merge linearity, and uniformity over the support.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/hash/random.h"
#include "src/sketch/l0_sampler.h"

namespace gsketch {
namespace {

TEST(L0Sampler, EmptyVectorYieldsNoSample) {
  L0Sampler s(1000, 8, 1);
  EXPECT_TRUE(s.IsZero());
  EXPECT_FALSE(s.Sample().has_value());
}

TEST(L0Sampler, SingletonAlwaysRecovered) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    L0Sampler s(1 << 20, 6, seed);
    s.Update(777, 5);
    auto r = s.Sample();
    ASSERT_TRUE(r.has_value()) << seed;
    EXPECT_EQ(r->index, 777u);
    EXPECT_EQ(r->value, 5);
  }
}

TEST(L0Sampler, SampleComesFromSupportWithExactValue) {
  L0Sampler s(10000, 8, 3);
  std::map<uint64_t, int64_t> truth;
  Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    uint64_t idx = rng.Below(10000);
    int64_t delta = static_cast<int64_t>(rng.Below(5)) + 1;
    truth[idx] += delta;
    s.Update(idx, delta);
  }
  auto r = s.Sample();
  ASSERT_TRUE(r.has_value());
  auto it = truth.find(r->index);
  ASSERT_NE(it, truth.end());
  EXPECT_EQ(r->value, it->second);
}

TEST(L0Sampler, DeletionsShrinkSupportToSurvivor) {
  L0Sampler s(5000, 8, 9);
  for (uint64_t i = 0; i < 100; ++i) s.Update(i * 7, 1);
  for (uint64_t i = 0; i < 100; ++i) {
    if (i != 42) s.Update(i * 7, -1);
  }
  auto r = s.Sample();
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->index, 42u * 7);
  EXPECT_EQ(r->value, 1);
}

TEST(L0Sampler, FullCancellationIsZero) {
  L0Sampler s(5000, 6, 10);
  for (uint64_t i = 0; i < 64; ++i) s.Update(i, 2);
  for (uint64_t i = 0; i < 64; ++i) s.Update(i, -2);
  EXPECT_TRUE(s.IsZero());
  EXPECT_FALSE(s.Sample().has_value());
}

TEST(L0Sampler, MergeEqualsSingleStream) {
  L0Sampler a(4096, 6, 77), b(4096, 6, 77), whole(4096, 6, 77);
  Rng rng(5);
  for (int i = 0; i < 300; ++i) {
    uint64_t idx = rng.Below(4096);
    if (i % 2 == 0) {
      a.Update(idx, 1);
    } else {
      b.Update(idx, 1);
    }
    whole.Update(idx, 1);
  }
  a.Merge(b);
  auto ra = a.Sample(), rw = whole.Sample();
  ASSERT_EQ(ra.has_value(), rw.has_value());
  if (ra.has_value()) {
    // Identical linear measurements => identical decode.
    EXPECT_EQ(ra->index, rw->index);
    EXPECT_EQ(ra->value, rw->value);
  }
}

TEST(L0Sampler, SeedDeterminism) {
  L0Sampler a(1024, 5, 123), b(1024, 5, 123);
  for (uint64_t i = 0; i < 50; ++i) {
    a.Update(i * 3, 1);
    b.Update(i * 3, 1);
  }
  auto ra = a.Sample(), rb = b.Sample();
  ASSERT_TRUE(ra.has_value());
  ASSERT_TRUE(rb.has_value());
  EXPECT_EQ(ra->index, rb->index);
}

TEST(L0Sampler, SuccessRateHighAcrossSeeds) {
  int success = 0;
  constexpr int kTrials = 100;
  for (int t = 0; t < kTrials; ++t) {
    L0Sampler s(1 << 16, 8, 1000 + t);
    Rng rng(t);
    for (int i = 0; i < 500; ++i) s.Update(rng.Below(1 << 16), 1);
    if (s.Sample().has_value()) ++success;
  }
  // 8 repetitions: failure probability should be well under 10%.
  EXPECT_GE(success, 95);
}

TEST(L0Sampler, UniformityChiSquaredOverSmallSupport) {
  // Fixed 8-element support; sample once per seed. Chi-squared with 7 dof:
  // 99.9% critical value ~ 24.3; allow 30 for slack.
  constexpr int kSupport = 8;
  constexpr int kTrials = 800;
  std::map<uint64_t, int> counts;
  int success = 0;
  for (int t = 0; t < kTrials; ++t) {
    L0Sampler s(1 << 12, 6, 5000 + t);
    for (int i = 0; i < kSupport; ++i) {
      s.Update(static_cast<uint64_t>(100 + i * 37), 1);
    }
    auto r = s.Sample();
    if (!r.has_value()) continue;
    ++success;
    counts[r->index]++;
  }
  ASSERT_GT(success, kTrials / 2);
  double expected = static_cast<double>(success) / kSupport;
  double chi2 = 0;
  for (int i = 0; i < kSupport; ++i) {
    double got = counts[static_cast<uint64_t>(100 + i * 37)];
    chi2 += (got - expected) * (got - expected) / expected;
  }
  EXPECT_LT(chi2, 30.0) << "support sampling far from uniform";
}

// Parameterized sweep: samplers across domains and support sizes always
// return true support members with exact values.
class L0SamplerSweep : public ::testing::TestWithParam<
                           std::tuple<uint64_t, int, uint32_t>> {};

TEST_P(L0SamplerSweep, SampleInSupport) {
  auto [domain, support, reps] = GetParam();
  L0Sampler s(domain, reps, domain * 31 + support);
  std::set<uint64_t> truth;
  Rng rng(support);
  while (truth.size() < static_cast<size_t>(support)) {
    truth.insert(rng.Below(domain));
  }
  for (uint64_t idx : truth) s.Update(idx, 3);
  auto r = s.Sample();
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(truth.count(r->index) > 0);
  EXPECT_EQ(r->value, 3);
}

INSTANTIATE_TEST_SUITE_P(
    DomainsAndSupports, L0SamplerSweep,
    ::testing::Combine(::testing::Values<uint64_t>(64, 4096, 1 << 20),
                       ::testing::Values(1, 5, 40),
                       ::testing::Values<uint32_t>(4, 8)));

}  // namespace
}  // namespace gsketch
