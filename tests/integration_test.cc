// End-to-end integration tests: full dynamic-stream pipelines, distributed
// merging across every non-adaptive sketch, Nisan-PRG-seeded sketches, and
// stream-order invariance.
#include <gtest/gtest.h>

#include "src/core/min_cut.h"
#include "src/core/simple_sparsifier.h"
#include "src/core/spanning_forest.h"
#include "src/core/subgraph_patterns.h"
#include "src/core/subgraph_sketch.h"
#include "src/graph/cuts.h"
#include "src/graph/generators.h"
#include "src/graph/stoer_wagner.h"
#include "src/graph/stream.h"
#include "src/graph/subgraph_census.h"
#include "src/hash/nisan_prg.h"
#include "src/hash/random.h"

namespace gsketch {
namespace {

TEST(Integration, FullPipelineOnChurnedPlantedCut) {
  // A realistic end-to-end: planted 2-bridge graph, 50% churn, shuffled
  // stream, then min-cut + sparsifier + triangle estimates, all single
  // pass over the same stream.
  Graph g = Dumbbell(10, 0.85, 2, 1);
  auto stream = DynamicGraphStream::FromGraph(g);
  Rng rng(2);
  auto churned = stream.WithChurn(g.NumEdges() / 2, &rng).Shuffled(&rng);

  MinCutOptions mc_opt;
  mc_opt.epsilon = 0.5;
  mc_opt.forest.repetitions = 5;
  MinCutSketch mincut(20, mc_opt, 3);

  SimpleSparsifierOptions sp_opt;
  sp_opt.k_override = 8;
  sp_opt.forest.repetitions = 5;
  SimpleSparsifier sparsifier(20, sp_opt, 4);

  SubgraphSketch triangles(20, 3, 80, 6, 5);

  churned.Replay([&](NodeId u, NodeId v, int64_t d) {
    mincut.Update(u, v, d);
    sparsifier.Update(u, v, d);
    triangles.Update(u, v, d);
  });

  auto mc = mincut.Estimate();
  EXPECT_TRUE(mc.resolved);
  EXPECT_DOUBLE_EQ(mc.value, 2.0);

  Graph h = sparsifier.Extract();
  EXPECT_TRUE(g.ContainsEdgesOf(h));
  auto err = CompareCuts(g, h, BfsBallCuts(g, 20, &rng));
  EXPECT_LT(err.max_rel_error, 0.8);

  auto census = CensusOrder3(g);
  auto tri = triangles.EstimateGamma(TriangleCode());
  EXPECT_NEAR(tri.gamma, census.Gamma(TriangleCode()), 0.2);
}

TEST(Integration, SixteenSiteDistributedMergeExactEquality) {
  // Section 1.1: adding per-site sketches must equal the single-stream
  // sketch *bitwise* (same linear measurements), so decoded outputs are
  // identical, not merely close.
  Graph g = ErdosRenyi(24, 0.35, 7);
  auto stream = DynamicGraphStream::FromGraph(g);
  Rng rng(8);
  auto parts = stream.Partition(16, &rng);

  ForestOptions f_opt;
  f_opt.repetitions = 5;
  constexpr uint64_t kSeed = 99;

  SpanningForestSketch whole(24, f_opt, kSeed);
  stream.Replay(
      [&whole](NodeId u, NodeId v, int64_t d) { whole.Update(u, v, d); });

  SpanningForestSketch merged(24, f_opt, kSeed);
  for (const auto& part : parts) {
    SpanningForestSketch site(24, f_opt, kSeed);
    part.Replay(
        [&site](NodeId u, NodeId v, int64_t d) { site.Update(u, v, d); });
    merged.Merge(site);
  }

  Graph fw = whole.ExtractForest(), fm = merged.ExtractForest();
  EXPECT_EQ(fw.NumEdges(), fm.NumEdges());
  for (const auto& e : fw.Edges()) {
    EXPECT_TRUE(fm.HasEdge(e.u, e.v));
  }
}

TEST(Integration, InsertDeleteEquivalentToNeverInserted) {
  // Property: a stream with paired insert+delete of extra edges produces a
  // sketch state identical to the clean stream's (linearity), hence equal
  // decoded sparsifiers.
  Graph g = GridGraph(4, 4);
  auto clean = DynamicGraphStream::FromGraph(g);
  Rng rng(9);
  auto churned = clean.WithChurn(40, &rng);

  SimpleSparsifierOptions opt;
  opt.k_override = 6;
  opt.forest.repetitions = 5;
  SimpleSparsifier a(16, opt, 10), b(16, opt, 10);
  clean.Replay([&a](NodeId u, NodeId v, int64_t d) { a.Update(u, v, d); });
  churned.Replay([&b](NodeId u, NodeId v, int64_t d) { b.Update(u, v, d); });

  Graph ha = a.Extract(), hb = b.Extract();
  EXPECT_EQ(ha.NumEdges(), hb.NumEdges());
  for (const auto& e : ha.Edges()) {
    EXPECT_DOUBLE_EQ(hb.EdgeWeight(e.u, e.v), e.weight);
  }
}

TEST(Integration, NisanSeededSketchesWork) {
  // Section 3.4: draw every sketch seed from Nisan's PRG instead of fresh
  // entropy; the algorithms must still function.
  PrgSeedBank bank(12345, 10);
  Graph g = Dumbbell(8, 0.9, 1, 11);

  MinCutOptions opt;
  opt.epsilon = 0.5;
  opt.forest.repetitions = 5;
  MinCutSketch sk(16, opt, bank.Seed(0));
  for (const auto& e : g.Edges()) sk.Update(e.u, e.v, 1);
  auto est = sk.Estimate();
  EXPECT_TRUE(est.resolved);
  EXPECT_DOUBLE_EQ(est.value, 1.0);

  SpanningForestSketch forest(16, ForestOptions{0, 5}, bank.Seed(1));
  for (const auto& e : g.Edges()) forest.Update(e.u, e.v, 1);
  EXPECT_EQ(forest.CountComponents(), 1u);
}

TEST(Integration, MulticutQueryAfterHeavyChurnMatchesExact) {
  // Stream shrinks a complete graph to a sparse planted-partition graph;
  // the min-cut estimate must match the *final* graph, not history.
  constexpr NodeId n = 16;
  Graph final_graph = PlantedPartition(n, 2, 0.9, 0.1, 12);
  if (final_graph.NumComponents() != 1) GTEST_SKIP();
  Graph complete = CompleteGraph(n);

  MinCutOptions opt;
  opt.epsilon = 0.5;
  opt.forest.repetitions = 5;
  MinCutSketch sk(n, opt, 13);
  for (const auto& e : complete.Edges()) sk.Update(e.u, e.v, 1);
  for (const auto& e : complete.Edges()) {
    if (!final_graph.HasEdge(e.u, e.v)) sk.Update(e.u, e.v, -1);
  }
  auto est = sk.Estimate();
  auto exact = StoerWagnerMinCut(final_graph);
  ASSERT_TRUE(est.resolved);
  if (exact.value < sk.k()) {
    // Small cut: resolved at level 0 exactly.
    EXPECT_DOUBLE_EQ(est.value, exact.value);
  } else {
    EXPECT_GE(est.value, 0.4 * exact.value);
    EXPECT_LE(est.value, 2.5 * exact.value);
  }
}

}  // namespace
}  // namespace gsketch
