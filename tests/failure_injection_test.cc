// Failure-path and edge-case tests: undersized sketches must fail loudly
// (FAIL results, never silently-wrong answers), and degenerate inputs
// (empty graphs, isolated nodes, multigraphs, duplicate deletes) must be
// handled.
#include <gtest/gtest.h>

#include "src/core/min_cut.h"
#include "src/core/simple_sparsifier.h"
#include "src/core/sparsifier.h"
#include "src/core/spanning_forest.h"
#include "src/core/subgraph_sketch.h"
#include "src/core/subgraph_patterns.h"
#include "src/graph/generators.h"
#include "src/sketch/l0_sampler.h"
#include "src/sketch/sparse_recovery.h"

namespace gsketch {
namespace {

TEST(FailurePaths, UndersizedRecoveryReportsFailNeverLies) {
  // 64 entries into capacity-2 sketches: decode must FAIL, not hallucinate.
  for (uint64_t seed = 0; seed < 50; ++seed) {
    SparseRecovery s(1 << 16, 2, 3, seed);
    for (uint64_t i = 0; i < 64; ++i) s.Update(i * 97 + seed, 1);
    auto r = s.Decode();
    EXPECT_FALSE(r.ok) << seed;
    EXPECT_TRUE(r.entries.empty()) << seed;
  }
}

TEST(FailurePaths, SingleRepetitionSamplerFailsGracefully) {
  // reps=1 fails a constant fraction of the time; a failure must return
  // nullopt, never a wrong (index, value).
  int failures = 0;
  for (uint64_t seed = 0; seed < 200; ++seed) {
    L0Sampler s(1 << 16, 1, seed);
    std::set<uint64_t> truth;
    for (uint64_t i = 0; i < 30; ++i) {
      truth.insert(i * 523 + 7);
    }
    for (uint64_t i : truth) s.Update(i, 2);
    auto r = s.Sample();
    if (!r.has_value()) {
      ++failures;
      continue;
    }
    EXPECT_TRUE(truth.count(r->index) > 0) << seed;
    EXPECT_EQ(r->value, 2) << seed;
  }
  EXPECT_GT(failures, 0) << "reps=1 should fail sometimes";
  EXPECT_LT(failures, 150) << "but not almost always";
}

TEST(FailurePaths, SparsifierRecoveryFailuresAreCounted) {
  // A Fig. 3 sparsifier with absurdly small recovery capacity on a dense
  // graph: decoding must record recovery failures rather than crash or
  // fabricate edges.
  Graph g = CompleteGraph(24);
  SparsifierOptions opt;
  opt.k_override = 4;  // far below the 23-edge min cut
  opt.rows = 3;
  opt.max_level = 2;   // hierarchy too shallow to thin the cuts
  opt.rough.k_override = 4;
  opt.rough.max_level = 2;
  opt.rough.forest.repetitions = 4;
  Sparsifier sk(24, opt, 3);
  for (const auto& e : g.Edges()) sk.Update(e.u, e.v, 1);
  SparsifierStats stats;
  Graph h = sk.Extract(&stats);
  EXPECT_GT(stats.recovery_failures, 0u);
  EXPECT_TRUE(g.ContainsEdgesOf(h));  // whatever was recovered is real
}

TEST(EdgeCases, EmptyGraphEverywhere) {
  ForestOptions fo;
  fo.repetitions = 4;
  SpanningForestSketch forest(16, fo, 1);
  EXPECT_EQ(forest.ExtractForest().NumEdges(), 0u);

  MinCutOptions mo;
  mo.epsilon = 1.0;
  mo.max_level = 4;
  mo.forest.repetitions = 4;
  MinCutSketch mincut(16, mo, 2);
  auto est = mincut.Estimate();
  EXPECT_DOUBLE_EQ(est.value, 0.0);

  SimpleSparsifierOptions so;
  so.k_override = 4;
  so.max_level = 4;
  so.forest.repetitions = 4;
  SimpleSparsifier sparsifier(16, so, 3);
  EXPECT_EQ(sparsifier.Extract().NumEdges(), 0u);
}

TEST(EdgeCases, SingleEdgeGraph) {
  ForestOptions fo;
  fo.repetitions = 6;
  SpanningForestSketch forest(8, fo, 4);
  forest.Update(2, 5, 1);
  Graph f = forest.ExtractForest();
  EXPECT_EQ(f.NumEdges(), 1u);
  EXPECT_TRUE(f.HasEdge(2, 5));
  EXPECT_EQ(f.NumComponents(), 7u);
}

TEST(EdgeCases, MultigraphMultiplicities) {
  // The same edge inserted 5 times then deleted 3 times: multiplicity 2.
  ForestOptions fo;
  fo.repetitions = 6;
  SpanningForestSketch forest(4, fo, 5);
  for (int i = 0; i < 5; ++i) forest.Update(0, 1, 1);
  for (int i = 0; i < 3; ++i) forest.Update(0, 1, -1);
  Graph f = forest.ExtractForest();
  ASSERT_EQ(f.NumEdges(), 1u);
  EXPECT_DOUBLE_EQ(f.EdgeWeight(0, 1), 2.0);  // multiplicity recovered
}

TEST(EdgeCases, DeleteBeyondZeroThenReinsert) {
  // Linearity allows transient negative multiplicities mid-stream as long
  // as the final multiplicity is non-negative (Definition 1).
  ForestOptions fo;
  fo.repetitions = 6;
  SpanningForestSketch forest(4, fo, 6);
  forest.Update(0, 1, -1);
  forest.Update(0, 1, 1);  // net zero
  forest.Update(2, 3, 1);
  Graph f = forest.ExtractForest();
  EXPECT_EQ(f.NumEdges(), 1u);
  EXPECT_TRUE(f.HasEdge(2, 3));
}

TEST(EdgeCases, IsolatedNodesCountAsComponents) {
  ForestOptions fo;
  fo.repetitions = 4;
  SpanningForestSketch forest(10, fo, 7);
  forest.Update(0, 1, 1);
  EXPECT_EQ(forest.ExtractForest().NumComponents(), 9u);
}

TEST(EdgeCases, SubgraphSketchMinimumN) {
  // n == order: exactly one column.
  SubgraphSketch sk(3, 3, 20, 6, 8);
  sk.Update(0, 1, 1);
  sk.Update(1, 2, 1);
  sk.Update(0, 2, 1);
  auto est = sk.EstimateGamma(TriangleCode());
  EXPECT_DOUBLE_EQ(est.gamma, 1.0);
  EXPECT_EQ(sk.num_columns(), 1u);
}

TEST(EdgeCases, TwoNodeGraphMinCut) {
  MinCutOptions mo;
  mo.epsilon = 1.0;
  mo.max_level = 2;
  mo.forest.repetitions = 6;
  MinCutSketch sk(2, mo, 9);
  sk.Update(0, 1, 1);
  auto est = sk.Estimate();
  EXPECT_TRUE(est.resolved);
  EXPECT_DOUBLE_EQ(est.value, 1.0);
}

}  // namespace
}  // namespace gsketch
