// Tests for work-stealing delta-merge ingestion (DriverOptions::delta_mode,
// src/driver/sketch_driver.h) and the drain-barrier fixes that rode along.
//
// The load-bearing property is BYTE parity: delta mode reorders updates,
// groups them into per-node batches claimed by arbitrary workers, and
// applies them either through the AccumulateDelta/MergeDelta arena path or
// in place under a striped lock — and because the sketches are linear
// measurements, none of that may change a single sketch byte. The parity
// loop pins delta_min_batch at both extremes so BOTH worker paths (delta
// arena and locked in-place apply) are proven against plain sequential
// ingestion for every registered family.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "src/core/sketch_registry.h"
#include "src/driver/sketch_driver.h"
#include "src/graph/generators.h"
#include "src/graph/stream.h"
#include "src/hash/random.h"

namespace gsketch {
namespace {

constexpr NodeId kN = 16;
constexpr uint64_t kSeed = 9;

// A stream with deletions, shuffled into adversarial order.
DynamicGraphStream TestStream(uint64_t seed) {
  Rng rng(seed);
  Graph g = ErdosRenyi(kN, 0.35, seed);
  DynamicGraphStream s = DynamicGraphStream::FromGraph(g);
  return s.WithChurn(/*extra=*/s.Size() / 3 + 4, &rng).Shuffled(&rng);
}

std::string Bytes(const LinearSketch& sk) {
  std::string out;
  sk.AppendTo(&out);
  return out;
}

// --------------------------------------------------- parity per family --

// Delta-mode ingestion must be byte-identical to plain sequential
// ingestion for every registered family, with and without gutters, at
// multiple worker counts for the endpoint-sharded families, and on both
// worker apply paths: delta_min_batch=1 forces every batch through the
// accumulate-then-merge arena (for families with delta support),
// delta_min_batch=SIZE_MAX forces the locked in-place fallback.
TEST(DeltaParity, EveryRegisteredFamilyBothPathsThreadsAndGutters) {
  DynamicGraphStream s = TestStream(5);
  for (const AlgInfo& info : Registry()) {
    SCOPED_TRACE(info.name);
    auto sequential = info.make(kN, AlgOptions{}, kSeed);
    s.Replay([&](NodeId u, NodeId v, int64_t d) {
      sequential->Update(u, v, d);
    });
    const std::string expected = Bytes(*sequential);

    for (size_t gutter_bytes : {size_t{0}, size_t{4096}}) {
      for (uint32_t threads : {1u, 3u}) {
        if (threads > 1 && !info.endpoint_sharded) continue;
        for (size_t min_batch :
             {size_t{1}, std::numeric_limits<size_t>::max()}) {
          auto delta = info.make(kN, AlgOptions{}, kSeed);
          DriverOptions opt;
          opt.num_workers = threads;
          opt.gutter_bytes = gutter_bytes;
          opt.delta_mode = true;
          opt.delta_min_batch = min_batch;
          SketchDriver<LinearSketch> driver(delta.get(), opt);
          driver.ProcessStream(s);
          EXPECT_EQ(driver.TotalUpdates(), 2 * s.Size());
          EXPECT_EQ(Bytes(*delta), expected)
              << "gutter=" << gutter_bytes << "B, threads=" << threads
              << ", delta_min_batch=" << min_batch;
        }
      }
    }
  }
}

// ------------------------------------------------ hot-spot distribution --

// A hot-spot stream (every token incident to node 0) pins half the stream
// to ONE worker under endpoint sharding. Delta mode's shared queue must
// spread it: every worker applies work, and no worker applies everything.
TEST(DeltaWorkStealing, HotSpotStreamReachesEveryWorker) {
  constexpr NodeId n = 64;
  constexpr uint32_t kWorkers = 3;
  DynamicGraphStream s(n);
  Rng rng(11);
  for (int i = 0; i < 20000; ++i) {
    s.Push(0, 1 + rng.Below(n - 1), +1);
  }

  auto sequential = FindAlg("connectivity")->make(n, AlgOptions{}, kSeed);
  s.Replay([&](NodeId u, NodeId v, int64_t d) {
    sequential->Update(u, v, d);
  });
  const std::string expected = Bytes(*sequential);

  auto delta = FindAlg("connectivity")->make(n, AlgOptions{}, kSeed);
  DriverOptions opt;
  opt.num_workers = kWorkers;
  opt.delta_mode = true;
  // Small producer batches -> many NodeBatches, so the shared queue has
  // real work to distribute. Node 0's slice of each dispatch exceeds
  // delta_min_batch (delta path); the cold endpoints' singletons fall
  // back to the locked in-place path — both run concurrently here.
  opt.batch_size = 512;
  uint64_t per_worker[kWorkers];
  {
    SketchDriver<LinearSketch> driver(delta.get(), opt);
    driver.ProcessStream(s);
    ASSERT_EQ(driver.num_workers(), kWorkers);
    uint64_t total = 0;
    for (uint32_t w = 0; w < kWorkers; ++w) {
      per_worker[w] = driver.WorkerAppliedHalves(w);
      total += per_worker[w];
    }
    EXPECT_EQ(total, 2 * s.Size());
  }
  EXPECT_EQ(Bytes(*delta), expected);
  for (uint32_t w = 0; w < kWorkers; ++w) {
    EXPECT_GT(per_worker[w], 0u) << "worker " << w << " never applied work "
                                 << "(hot spot pinned to one worker?)";
    EXPECT_LT(per_worker[w], 2 * s.Size())
        << "worker " << w << " applied the whole stream alone";
  }
}

// ----------------------------------------------- drain interleavings --

// Repeated mid-stream drains while gutters are flushing into busy worker
// queues: the exact interleaving where Drain's condvar predicate races
// worker-side applied_halves_ bumps and the workers' advisory peek at
// enqueued_halves_. Run under TSan in CI; the assertions also prove every
// drain is a consistent cut (all pushed halves applied, bytes reproducible).
TEST(DeltaDrain, DrainUnderGutterFlushInterleaving) {
  constexpr NodeId n = 32;
  DynamicGraphStream s(n);
  Rng rng(23);
  for (int i = 0; i < 6000; ++i) {
    NodeId u = rng.Below(n), v = rng.Below(n);
    if (u == v) v = (v + 1) % n;
    s.Push(u, v, rng.Below(4) == 0 ? -1 : +1);
  }

  for (bool delta_mode : {false, true}) {
    SCOPED_TRACE(delta_mode ? "delta" : "sharded");
    auto sk = FindAlg("connectivity")->make(n, AlgOptions{}, kSeed);
    DriverOptions opt;
    opt.num_workers = 3;
    opt.gutter_bytes = 256;      // tiny gutters: flush storms mid-push
    opt.max_pending_batches = 2; // tight queues: producer blocks often
    opt.delta_mode = delta_mode;
    opt.delta_min_batch = 1;
    SketchDriver<LinearSketch> driver(sk.get(), opt);
    uint64_t pushed = 0;
    for (const auto& e : s.Updates()) {
      driver.Push(e.u, e.v, e.delta);
      if (++pushed % 512 == 0) {
        driver.Drain();
        EXPECT_EQ(driver.TotalUpdates(), 2 * pushed);
      }
    }
    driver.Drain();
    EXPECT_EQ(driver.TotalUpdates(), 2 * s.Size());
  }
}

// ------------------------------------------------- resolved workers --

// DriverOptions::num_workers == 0 resolves through ResolveWorkerCount —
// THE shared resolution rule (pipeline, CLI, benches) — and the driver
// must REPORT the resolved count (benches and the CLI print it).
TEST(DeltaDriver, ZeroWorkersReportResolvedCount) {
  const uint32_t hw = ResolveWorkerCount(0);
  for (bool delta_mode : {false, true}) {
    auto sk = FindAlg("connectivity")->make(kN, AlgOptions{}, kSeed);
    DriverOptions opt;
    opt.num_workers = 0;
    opt.delta_mode = delta_mode;
    SketchDriver<LinearSketch> driver(sk.get(), opt);
    EXPECT_EQ(driver.num_workers(), hw);
    EXPECT_EQ(driver.delta_mode(), delta_mode);
  }
}

}  // namespace
}  // namespace gsketch
