// Tests for gutter-buffered ingestion (src/driver/gutter.h) and the
// driver bugfixes that rode along with it.
//
// The load-bearing property is BYTE parity: gutters reorder and coalesce
// updates and flush them through the ApplyBatch fast path, and because
// the sketches are linear measurements none of that may change a single
// sketch byte. The parity tests assert serialization equality against
// plain sequential ingestion for every registered algorithm family.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/connectivity_suite.h"
#include "src/core/sketch_registry.h"
#include "src/core/spanning_forest.h"
#include "src/driver/binary_stream.h"
#include "src/driver/checkpoint.h"
#include "src/driver/gutter.h"
#include "src/driver/sketch_driver.h"
#include "src/graph/generators.h"
#include "src/graph/stream.h"
#include "src/hash/random.h"

namespace gsketch {
namespace {

constexpr NodeId kN = 16;
constexpr uint64_t kSeed = 9;

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

// A stream with deletions, shuffled into adversarial order.
DynamicGraphStream TestStream(uint64_t seed) {
  Rng rng(seed);
  Graph g = ErdosRenyi(kN, 0.35, seed);
  DynamicGraphStream s = DynamicGraphStream::FromGraph(g);
  return s.WithChurn(/*extra=*/s.Size() / 3 + 4, &rng).Shuffled(&rng);
}

std::string Bytes(const LinearSketch& sk) {
  std::string out;
  sk.AppendTo(&out);
  return out;
}

// ------------------------------------------------- GutterSystem unit --

TEST(GutterSystem, FlushesAtCapacityAndCoalescesDuplicates) {
  std::vector<NodeBatch> batches;
  GutterOptions opt;
  opt.bytes_per_gutter = 4 * kGutterEntryBytes;  // 4 entries per gutter
  GutterSystem gutter(opt, [&](NodeBatch&& b) {
    batches.push_back(std::move(b));
  });
  ASSERT_EQ(gutter.entries_per_gutter(), 4u);

  // Three half-updates for the same edge fold into ONE entry.
  gutter.BufferHalf(0, 5, +1);
  gutter.BufferHalf(0, 5, +1);
  gutter.BufferHalf(0, 5, -1);
  EXPECT_EQ(gutter.coalesced_halves(), 2u);
  EXPECT_EQ(gutter.buffered_halves(), 3u);
  EXPECT_TRUE(batches.empty());

  // Three more distinct entries hit the 4-entry capacity: one flush.
  gutter.BufferHalf(0, 6, +1);
  gutter.BufferHalf(0, 7, +1);
  gutter.BufferHalf(0, 8, +1);
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].endpoint, 0u);
  EXPECT_EQ(batches[0].others, (std::vector<NodeId>{5, 6, 7, 8}));
  EXPECT_EQ(batches[0].deltas, (std::vector<int64_t>{1, 1, 1, 1}));
  EXPECT_EQ(batches[0].halves, 6u);  // raw halves, coalescing included
  EXPECT_EQ(gutter.buffered_halves(), 0u);

  // Partial gutters for other nodes flush only on FlushAll.
  gutter.BufferHalf(3, 1, +1);
  gutter.BufferHalf(9, 2, -1);
  EXPECT_EQ(batches.size(), 1u);
  gutter.FlushAll();
  ASSERT_EQ(batches.size(), 3u);
  EXPECT_EQ(gutter.buffered_halves(), 0u);
  EXPECT_EQ(gutter.flushes(), 3u);
}

// opt.coalesce = false buffers every token verbatim — the mode the driver
// selects for sketches that are not linear in delta (see
// LinearSketch::CoalesceSafe), where folding +1, +1 into +2 would change
// which cells the tokens reach.
TEST(GutterSystem, CoalesceOffBuffersEveryTokenVerbatim) {
  std::vector<NodeBatch> batches;
  GutterOptions opt;
  opt.bytes_per_gutter = 4 * kGutterEntryBytes;
  opt.coalesce = false;
  GutterSystem gutter(opt, [&](NodeBatch&& b) {
    batches.push_back(std::move(b));
  });

  // Same-edge tokens stay separate entries and fill the gutter.
  gutter.BufferHalf(0, 5, +1);
  gutter.BufferHalf(0, 5, +1);
  gutter.BufferHalf(0, 5, -1);
  gutter.BufferHalf(0, 5, +2);
  EXPECT_EQ(gutter.coalesced_halves(), 0u);
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].others, (std::vector<NodeId>{5, 5, 5, 5}));
  EXPECT_EQ(batches[0].deltas, (std::vector<int64_t>{1, 1, -1, 2}));
  EXPECT_EQ(batches[0].halves, 4u);
}

TEST(GutterSystem, GlobalCapBoundsBufferedBytes) {
  std::vector<NodeBatch> batches;
  GutterOptions opt;
  opt.bytes_per_gutter = 64 * kGutterEntryBytes;
  opt.max_total_bytes = 16 * kGutterEntryBytes;  // clamps to 2 gutters
  GutterSystem gutter(opt, [&](NodeBatch&& b) {
    batches.push_back(std::move(b));
  });
  // Spray entries across many nodes; no single gutter ever fills, so only
  // the global cap can keep memory bounded.
  const size_t cap_entries = 2 * 64;  // clamped to 2 * bytes_per_gutter
  for (NodeId v = 1; v <= 200; ++v) {
    gutter.BufferHalf(0, v, +1);
    gutter.BufferHalf(v, 0, +1);
    EXPECT_LE(gutter.buffered_halves(), cap_entries + 1);
  }
  EXPECT_GT(batches.size(), 0u);  // the sweep flushed under pressure
  gutter.FlushAll();
  uint64_t delivered = 0;
  for (const auto& b : batches) delivered += b.halves;
  EXPECT_EQ(delivered, 400u);  // every half exactly once
}

// --------------------------------------------------- parity per family --

// Gutter-buffered ingestion must be byte-identical to plain sequential
// ingestion for every registered family, at several gutter sizes (a tiny
// gutter forces many small flushes, a large one a single drain flush) and
// at multiple worker counts for the endpoint-sharded families.
TEST(GutterParity, EveryRegisteredFamilyAtSeveralGutterSizes) {
  DynamicGraphStream s = TestStream(5);
  for (const AlgInfo& info : Registry()) {
    SCOPED_TRACE(info.name);
    auto sequential = info.make(kN, AlgOptions{}, kSeed);
    s.Replay([&](NodeId u, NodeId v, int64_t d) {
      sequential->Update(u, v, d);
    });
    const std::string expected = Bytes(*sequential);

    for (size_t gutter_bytes : {size_t{64}, size_t{4096}}) {
      for (uint32_t threads : {1u, 3u}) {
        if (threads > 1 && !info.endpoint_sharded) continue;
        auto guttered = info.make(kN, AlgOptions{}, kSeed);
        DriverOptions opt;
        opt.num_workers = threads;
        opt.gutter_bytes = gutter_bytes;
        SketchDriver<LinearSketch> driver(guttered.get(), opt);
        driver.ProcessStream(s);
        EXPECT_EQ(driver.TotalUpdates(), 2 * s.Size());
        EXPECT_EQ(Bytes(*guttered), expected)
            << "gutter=" << gutter_bytes << "B, threads=" << threads;
      }
    }
  }
}

// ---------------------------------------- min-endpoint gutter audit --
//
// SubgraphSketch (triangles) is not endpoint-sharded: its UpdateEndpoint
// applies the WHOLE token when endpoint == min(u, v) and is a no-op for
// the other half. Gutters buffer both halves in different per-node
// gutters and may coalesce each side differently (coalescing only folds
// into the newest entry), so the audit below checks the routing invariant
// directly: across all flushed batches, the min-endpoint halves of each
// edge carry exactly the edge's delta sum, and the max-endpoint halves
// apply nothing — each token lands exactly once, never once per half.
//
// Mimics the gutter-flush shape of SubgraphSketch exactly: min-endpoint
// semantics, no ApplyBatch override (the driver falls back to the
// per-update UpdateEndpoint loop, like LinearSketch's default).
struct MinEndpointRecorder {
  std::map<std::pair<NodeId, NodeId>, int64_t> applied;
  uint64_t noop_halves = 0;

  void UpdateEndpoint(NodeId endpoint, NodeId u, NodeId v, int64_t delta) {
    if (endpoint == (u < v ? u : v)) {
      applied[{std::min(u, v), std::max(u, v)}] += delta;
    } else {
      ++noop_halves;
    }
  }
};

TEST(GutterMinEndpoint, EachEdgeAppliedExactlyOnceUnderCoalescing) {
  // Hot-spot multigraph stream with long same-edge runs and deletions:
  // the shape where per-gutter coalescing diverges most between the two
  // endpoint gutters.
  DynamicGraphStream s(kN);
  for (int r = 0; r < 50; ++r) s.Push(2, 7, +1);
  for (NodeId v = 1; v < kN; ++v) {
    s.Push(0, v, +1);
    s.Push(0, v, +1);
    s.Push(v, 0, -1);  // reversed endpoint order, same edge
  }
  for (int r = 0; r < 20; ++r) s.Push(7, 2, -1);  // reversed hot edge

  std::map<std::pair<NodeId, NodeId>, int64_t> expected;
  for (const auto& e : s.Updates()) {
    expected[{std::min(e.u, e.v), std::max(e.u, e.v)}] += e.delta;
  }

  for (size_t gutter_bytes : {size_t{64}, size_t{4096}}) {
    MinEndpointRecorder rec;
    DriverOptions opt;
    opt.num_workers = 1;  // min-endpoint algs are not endpoint-sharded
    opt.gutter_bytes = gutter_bytes;
    {
      SketchDriver<MinEndpointRecorder> driver(&rec, opt);
      driver.ProcessStream(s);
      ASSERT_NE(driver.gutters(), nullptr);
      EXPECT_GT(driver.gutters()->coalesced_halves(), 0u);
    }
    EXPECT_EQ(rec.applied, expected) << "gutter=" << gutter_bytes;
    // Every non-min half was a no-op; with coalescing there are at most
    // as many of them as raw halves pushed.
    EXPECT_GT(rec.noop_halves, 0u);
    EXPECT_LE(rec.noop_halves, s.Size());
  }
}

TEST(GutterMinEndpoint, TrianglesParityUnderCoalescingHeavyStream) {
  // The registry triangles family (SubgraphSketch through the default
  // ApplyBatch fallback) on the same coalescing-heavy shape: gutter-on
  // ingestion must be byte-identical to plain sequential ingestion at
  // both a tiny and a production gutter size.
  DynamicGraphStream s(kN);
  for (int r = 0; r < 30; ++r) s.Push(1, 2, +1);
  for (NodeId v = 2; v < 10; ++v) {
    s.Push(0, v, +1);
    s.Push(v, 0, +1);
    s.Push(0, v, -1);
  }
  s.Push(1, 3, +1);
  s.Push(2, 3, +1);  // closes a triangle {1,2,3}

  const AlgInfo* info = FindAlg("triangles");
  ASSERT_NE(info, nullptr);
  ASSERT_FALSE(info->endpoint_sharded);
  auto sequential = info->make(kN, AlgOptions{}, kSeed);
  s.Replay([&](NodeId u, NodeId v, int64_t d) {
    sequential->Update(u, v, d);
  });
  const std::string expected = Bytes(*sequential);

  for (size_t gutter_bytes : {size_t{64}, size_t{4096}}) {
    auto guttered = info->make(kN, AlgOptions{}, kSeed);
    DriverOptions opt;
    opt.num_workers = 1;
    opt.gutter_bytes = gutter_bytes;
    {
      SketchDriver<LinearSketch> driver(guttered.get(), opt);
      driver.ProcessStream(s);
      ASSERT_NE(driver.gutters(), nullptr);
      EXPECT_GT(driver.gutters()->coalesced_halves(), 0u);
      EXPECT_EQ(driver.TotalUpdates(), 2 * s.Size());
    }
    EXPECT_EQ(Bytes(*guttered), expected) << "gutter=" << gutter_bytes;
  }
}

TEST(GutterParity, InsertDeleteCancellationInsideOneGutter) {
  // Every spoke edge is inserted and deleted back-to-back, so per-gutter
  // coalescing folds the pair into a single ZERO-delta entry before any
  // flush happens (the gutter is larger than the whole stream — nothing
  // flushes until Drain). The flushed batches therefore carry delta-0
  // entries, and applying them must be a no-op for every family: byte
  // parity against plain sequential ingestion of the same stream.
  DynamicGraphStream s(kN);
  for (NodeId v = 1; v < kN; ++v) {
    s.Push(0, v, +1);
    s.Push(0, v, -1);  // cancels inside the same gutter entry
  }
  // A multi-copy cancellation (|delta| > 1) through the same fold.
  s.Push(3, 4, +2);
  s.Push(3, 4, -2);
  // A few surviving edges so the final sketch is not the empty graph and
  // a wrong zero-handling would visibly corrupt decoded state.
  s.Push(1, 2, +1);
  s.Push(2, 5, +1);
  s.Push(5, 6, +1);

  for (const AlgInfo& info : Registry()) {
    SCOPED_TRACE(info.name);
    auto sequential = info.make(kN, AlgOptions{}, kSeed);
    s.Replay([&](NodeId u, NodeId v, int64_t d) {
      sequential->Update(u, v, d);
    });
    const std::string expected = Bytes(*sequential);

    for (uint32_t threads : {1u, 2u}) {
      if (threads > 1 && !info.endpoint_sharded) continue;
      auto guttered = info.make(kN, AlgOptions{}, kSeed);
      DriverOptions opt;
      opt.num_workers = threads;
      opt.gutter_bytes = 1 << 20;  // whole stream fits: drain-only flush
      {
        SketchDriver<LinearSketch> driver(guttered.get(), opt);
        driver.ProcessStream(s);
        ASSERT_NE(driver.gutters(), nullptr);
        // The cancelled pairs really did coalesce before flushing.
        EXPECT_GE(driver.gutters()->coalesced_halves(), 2u * (kN - 1));
      }
      EXPECT_EQ(Bytes(*guttered), expected) << "threads=" << threads;
    }
  }
}

TEST(GutterParity, GlobalCapSweepKeepsParity) {
  DynamicGraphStream s = TestStream(11);
  ConnectivitySketch sequential(kN, ForestOptions{}, kSeed);
  s.Replay([&](NodeId u, NodeId v, int64_t d) { sequential.Update(u, v, d); });

  ConnectivitySketch capped(kN, ForestOptions{}, kSeed);
  DriverOptions opt;
  opt.num_workers = 2;
  opt.gutter_bytes = 1024;
  opt.gutter_total_bytes = 4 * kGutterEntryBytes;  // constant eviction
  {
    SketchDriver<ConnectivitySketch> driver(&capped, opt);
    driver.ProcessStream(s);
    ASSERT_NE(driver.gutters(), nullptr);
    EXPECT_EQ(driver.TotalUpdates(), 2 * s.Size());
  }
  std::string a, b;
  sequential.AppendTo(&a);
  capped.AppendTo(&b);
  EXPECT_EQ(a, b);
}

// ------------------------------------------------- driver lifecycle --

TEST(GutterDriver, FlushOnDrainDeliversBufferedUpdates) {
  // A gutter far larger than the stream: nothing flushes during Push, so
  // every update must reach the sketch via Drain's FlushAll.
  DynamicGraphStream s = TestStream(7);
  ConnectivitySketch sequential(kN, ForestOptions{}, kSeed);
  s.Replay([&](NodeId u, NodeId v, int64_t d) { sequential.Update(u, v, d); });

  ConnectivitySketch buffered(kN, ForestOptions{}, kSeed);
  DriverOptions opt;
  opt.num_workers = 2;
  opt.gutter_bytes = 1 << 20;
  SketchDriver<ConnectivitySketch> driver(&buffered, opt);
  for (const auto& e : s.Updates()) driver.Push(e.u, e.v, e.delta);
  // Everything is still sitting in gutters: nothing was dispatched.
  EXPECT_EQ(driver.TotalUpdates(), 0u);
  ASSERT_NE(driver.gutters(), nullptr);
  EXPECT_EQ(driver.gutters()->buffered_halves(), 2 * s.Size());

  driver.Drain();
  EXPECT_EQ(driver.TotalUpdates(), 2 * s.Size());
  EXPECT_EQ(driver.gutters()->buffered_halves(), 0u);
  std::string a, b;
  sequential.AppendTo(&a);
  buffered.AppendTo(&b);
  EXPECT_EQ(a, b);
}

TEST(GutterDriver, DestructionWithoutDrainFlushesGutters) {
  DynamicGraphStream s = TestStream(13);
  ConnectivitySketch sequential(kN, ForestOptions{}, kSeed);
  s.Replay([&](NodeId u, NodeId v, int64_t d) { sequential.Update(u, v, d); });

  ConnectivitySketch abandoned(kN, ForestOptions{}, kSeed);
  {
    DriverOptions opt;
    opt.num_workers = 3;
    opt.gutter_bytes = 1 << 20;  // nothing flushes before destruction
    SketchDriver<ConnectivitySketch> driver(&abandoned, opt);
    for (const auto& e : s.Updates()) driver.Push(e.u, e.v, e.delta);
  }
  std::string a, b;
  sequential.AppendTo(&a);
  abandoned.AppendTo(&b);
  EXPECT_EQ(a, b);
}

TEST(GutterDriver, HotSpotSingleNodeStreamCoalesces) {
  // Every token touches node 0 (a star with multigraph repetition), so
  // one gutter absorbs half the update volume and long same-edge runs
  // exercise the coalescing path.
  constexpr size_t kRepeats = 200;
  DynamicGraphStream s(kN);
  for (size_t r = 0; r < kRepeats; ++r) {
    s.Push(0, 1, +1);  // hot edge, coalesces
  }
  for (NodeId v = 1; v < kN; ++v) {
    s.Push(0, v, +1);
    s.Push(0, v, +1);
    s.Push(0, v, -1);
  }

  ConnectivitySketch sequential(kN, ForestOptions{}, kSeed);
  s.Replay([&](NodeId u, NodeId v, int64_t d) { sequential.Update(u, v, d); });

  ConnectivitySketch hot(kN, ForestOptions{}, kSeed);
  DriverOptions opt;
  opt.num_workers = 2;
  opt.gutter_bytes = 64 * kGutterEntryBytes;
  {
    SketchDriver<ConnectivitySketch> driver(&hot, opt);
    driver.ProcessStream(s);
    EXPECT_EQ(driver.TotalUpdates(), 2 * s.Size());  // raw halves, exact
    ASSERT_NE(driver.gutters(), nullptr);
    EXPECT_GT(driver.gutters()->coalesced_halves(), kRepeats);
  }
  std::string a, b;
  sequential.AppendTo(&a);
  hot.AppendTo(&b);
  EXPECT_EQ(a, b);
}

TEST(GutterDriver, CheckpointResumeEquivalence) {
  // Gutter ingestion of a prefix, checkpoint, restore, gutter ingestion
  // of the suffix == one uninterrupted ungated run, byte for byte.
  DynamicGraphStream s = TestStream(17);
  ASSERT_GT(s.Size(), 8u);
  const uint64_t cut = s.Size() / 2;
  const std::string ckpt_path = TempPath("gutter_resume.gskc");

  auto uninterrupted = FindAlg("connectivity")->make(kN, AlgOptions{}, kSeed);
  s.Replay([&](NodeId u, NodeId v, int64_t d) {
    uninterrupted->Update(u, v, d);
  });

  DriverOptions opt;
  opt.num_workers = 2;
  opt.gutter_bytes = 128;
  {
    auto prefix = FindAlg("connectivity")->make(kN, AlgOptions{}, kSeed);
    SketchDriver<LinearSketch> driver(prefix.get(), opt);
    for (uint64_t i = 0; i < cut; ++i) {
      driver.Push(s.Updates()[i].u, s.Updates()[i].v, s.Updates()[i].delta);
    }
    driver.Drain();
    std::string error;
    ASSERT_TRUE(SaveCheckpoint(ckpt_path, *prefix, cut, &error)) << error;
  }

  std::string error;
  auto ckpt = ReadCheckpointFile(ckpt_path, &error);
  ASSERT_TRUE(ckpt.has_value()) << error;
  auto resumed = RestoreSketch(*ckpt, &error);
  ASSERT_NE(resumed, nullptr) << error;
  {
    SketchDriver<LinearSketch> driver(resumed.get(), opt);
    for (uint64_t i = cut; i < s.Size(); ++i) {
      driver.Push(s.Updates()[i].u, s.Updates()[i].v, s.Updates()[i].delta);
    }
  }
  EXPECT_EQ(Bytes(*resumed), Bytes(*uninterrupted));
  std::remove(ckpt_path.c_str());
}

// ------------------------------------------- int64 delta unification --

TEST(DriverDeltaWidth, AccumulatedDeltasBeyondInt32Survive) {
  // The in-memory pipeline is int64 end to end: repeated pushes whose
  // per-edge aggregate exceeds 2^31 must decode exactly. (The GSKB wire
  // format stays int32 per record — this exercises the in-memory path.)
  constexpr NodeId n = 4;
  constexpr int64_t kBig = int64_t{1} << 30;
  SpanningForestSketch sequential(n, ForestOptions{}, kSeed);
  for (int i = 0; i < 6; ++i) sequential.Update(0, 1, kBig);
  sequential.Update(1, 2, kBig);      // single push beyond int32 range
  sequential.Update(2, 3, 5 * kBig);  // aggregate 5 * 2^30 > 2^32

  SpanningForestSketch driven(n, ForestOptions{}, kSeed);
  for (uint32_t gutter : {0u, 64u}) {
    SpanningForestSketch fresh(n, ForestOptions{}, kSeed);
    DriverOptions opt;
    opt.num_workers = 2;
    opt.batch_size = 2;
    opt.gutter_bytes = gutter;
    SketchDriver<SpanningForestSketch> driver(&fresh, opt);
    for (int i = 0; i < 6; ++i) driver.Push(0, 1, kBig);
    driver.Push(1, 2, kBig);
    driver.Push(2, 3, 5 * kBig);
    driver.Drain();
    std::string a, b;
    sequential.AppendTo(&a);
    fresh.AppendTo(&b);
    EXPECT_EQ(a, b) << "gutter=" << gutter;

    // The decoded forest carries the exact aggregate as edge weight —
    // 6 * 2^30 > 2^31 proves no int32 truncation anywhere in the driver.
    Graph forest = fresh.ExtractForest();
    double max_weight = 0;
    for (const auto& e : forest.Edges()) {
      if (e.weight > max_weight) max_weight = e.weight;
    }
    EXPECT_EQ(max_weight, static_cast<double>(6 * kBig))
        << "gutter=" << gutter;
  }
}

// --------------------------------------- ProcessFile error surfacing --

TEST(ProcessFileErrors, TruncatedFileReportsReaderDiagnostic) {
  DynamicGraphStream s = TestStream(23);
  std::string path = TempPath("gutter_truncated.gskb");
  ASSERT_TRUE(WriteBinaryStream(path, s));
  ASSERT_EQ(truncate(path.c_str(), 20 + 12 * (s.Size() / 2) + 5), 0);

  ConnectivitySketch sk(kN, ForestOptions{}, kSeed);
  SketchDriver<ConnectivitySketch> driver(&sk);
  BinaryStreamReader reader(path);
  std::string error;
  EXPECT_FALSE(driver.ProcessFile(&reader, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_NE(error.find("bytes"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(ProcessFileErrors, CorruptRecordMidStreamReportsPosition) {
  // Size-consistent file whose 4th record has u == v: the header passes,
  // so the failure surfaces mid-ProcessFile — exactly the case that used
  // to come back as a bare `false`.
  DynamicGraphStream s = TestStream(29);
  ASSERT_GT(s.Size(), 8u);
  std::string path = TempPath("gutter_badrecord.gskb");
  ASSERT_TRUE(WriteBinaryStream(path, s));
  {
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 20 + 12 * 3, SEEK_SET);  // record 3: u := v
    unsigned char rec[8];
    ASSERT_EQ(std::fread(rec, 1, 8, f), 8u);
    std::fseek(f, 20 + 12 * 3, SEEK_SET);
    ASSERT_EQ(std::fwrite(rec + 4, 1, 4, f), 4u);  // u <- v
    std::fclose(f);
  }

  ConnectivitySketch sk(kN, ForestOptions{}, kSeed);
  SketchDriver<ConnectivitySketch> driver(&sk);
  BinaryStreamReader reader(path);
  ASSERT_TRUE(reader.ok()) << reader.error();
  std::string error;
  EXPECT_FALSE(driver.ProcessFile(&reader, &error));
  EXPECT_NE(error.find("bad record at update 3"), std::string::npos)
      << error;
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gsketch
