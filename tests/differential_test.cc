// Differential tier (`ctest -L differential`): every registry family is
// driven over seeded generated workloads (src/workload/) — through the
// same ingestion paths the CLI uses (sequential updates, the multi-worker
// driver, gutter-buffered batching, checkpoint/resume, shard/merge, and
// query-while-ingest snapshots) — and its decoded answers are checked
// against exact reference algorithms: DSU connectivity, BFS 2-coloring,
// Stoer-Wagner min cut, brute-force cut families, and the exact order-3
// subgraph census.
//
// Every assertion runs under a SCOPED_TRACE carrying a copy-pasteable
// repro command: regenerate the exact failing stream with
// `gsketch_cli gen <profile> <n> <updates> /tmp/s.gskb <seed>` and replay
// the failing family on it. Sketch seeds are pinned, so failures
// reproduce deterministically.
#include <gtest/gtest.h>

#include <cstdio>
#include <iterator>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/core/sketch_registry.h"
#include "src/core/subgraph_patterns.h"
#include "src/core/weighted_sparsifier.h"
#include "src/driver/checkpoint.h"
#include "src/driver/sketch_driver.h"
#include "src/driver/snapshot.h"
#include "src/graph/bfs.h"
#include "src/graph/cuts.h"
#include "src/graph/graph.h"
#include "src/graph/stoer_wagner.h"
#include "src/graph/stream.h"
#include "src/graph/subgraph_census.h"
#include "src/graph/union_find.h"
#include "src/workload/stream_generator.h"

namespace gsketch {
namespace {

// ------------------------------------------------------------ harness --

struct Scenario {
  const char* profile;
  NodeId n;
  size_t updates;
  uint64_t stream_seed;
};

// Six profiles (>= 5 required by the tier contract), small universes so
// the exact references (Stoer-Wagner, cut enumeration, order-3 census)
// stay instant.
constexpr Scenario kScenarios[] = {
    {"uniform", 20, 600, 101},  {"powerlaw", 22, 700, 202},
    {"hotspot", 18, 500, 303},  {"sliding", 20, 640, 404},
    {"churn", 24, 800, 505},    {"mixed", 21, 720, 606},
};

constexpr uint64_t kSketchSeed = 7;

DynamicGraphStream MakeScenarioStream(const Scenario& sc) {
  const WorkloadProfile* p = FindWorkloadProfile(sc.profile);
  EXPECT_NE(p, nullptr) << sc.profile;
  return p->generate(sc.n, sc.updates, sc.stream_seed);
}

// The copy-pasteable failure repro: regenerate the stream, rerun the
// family. (Checkpoint/shard variants append their own second command.)
std::string Repro(const Scenario& sc, const char* alg) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "repro: gsketch_cli gen %s %u %zu /tmp/s.gskb %llu && "
                "gsketch_cli %s %u /tmp/s.gskb %llu",
                sc.profile, sc.n, sc.updates,
                static_cast<unsigned long long>(sc.stream_seed), alg, sc.n,
                static_cast<unsigned long long>(kSketchSeed));
  std::string s = buf;
  if (std::string(alg) == "triangles") {
    s += "  (test drives the support-indicator view of this trace)";
  }
  return s;
}

// The ingestion paths rotated across (scenario, family) pairs. Every pair
// still checks against the same exact reference, so any path that decodes
// differently from sequential ingestion fails its cell of the matrix.
enum class IngestPath { kSequential, kDriver3, kGutter64, kGutter4096x2 };

const char* PathName(IngestPath p) {
  switch (p) {
    case IngestPath::kSequential: return "sequential";
    case IngestPath::kDriver3: return "driver-3-workers";
    case IngestPath::kGutter64: return "gutter-64B";
    case IngestPath::kGutter4096x2: return "gutter-4KiB-2-workers";
  }
  return "?";
}

void Ingest(LinearSketch* sk, const DynamicGraphStream& stream,
            IngestPath path) {
  if (path == IngestPath::kSequential) {
    stream.Replay(
        [sk](NodeId u, NodeId v, int64_t d) { sk->Update(u, v, d); });
    return;
  }
  DriverOptions opt;
  switch (path) {
    case IngestPath::kDriver3:
      opt.num_workers = 3;
      break;
    case IngestPath::kGutter64:
      opt.num_workers = 1;
      opt.gutter_bytes = 64;
      break;
    case IngestPath::kGutter4096x2:
      opt.num_workers = 2;
      opt.gutter_bytes = 4096;
      break;
    default:
      break;
  }
  // Mirror the CLI: algorithms that are not endpoint-sharded (triangles)
  // ingest on one worker without gutters.
  if (!sk->EndpointSharded()) {
    opt.num_workers = 1;
    opt.gutter_bytes = 0;
  }
  SketchDriver<LinearSketch> driver(sk, opt);
  driver.ProcessStream(stream);
  driver.Drain();
}

// ---------------------------------------------------- exact references --

// The families split by what they measure. Connectivity-like answers
// (components, bipartiteness, forests, the kconnect witness) depend only
// on edge SUPPORT; cut-valued answers (mincut, sparsifier, kedge witness
// weights) recover full multiplicities, so their reference is the
// multiplicity-WEIGHTED multigraph.
struct ExactRefs {
  Graph support;
  Graph weighted;
};

ExactRefs MakeRefs(const DynamicGraphStream& stream) {
  ExactRefs refs;
  refs.weighted = stream.Materialize();
  refs.support = Graph(refs.weighted.NumNodes());
  for (const auto& e : refs.weighted.Edges()) {
    refs.support.AddEdge(e.u, e.v, 1.0);
  }
  return refs;
}

// The support-indicator view of a trace: +1 when an edge's multiplicity
// leaves zero, -1 when it returns to zero. Preserves the profile's
// temporal insert/delete dynamics while keeping every multiplicity in
// {0, 1} — the documented domain of the subgraph (triangles) sketch,
// whose squash-column codes alias under multi-edges.
DynamicGraphStream IndicatorStream(const DynamicGraphStream& s) {
  DynamicGraphStream out(s.NumNodes());
  std::map<std::pair<NodeId, NodeId>, int64_t> mult;
  for (const auto& e : s.Updates()) {
    NodeId a = e.u < e.v ? e.u : e.v;
    NodeId b = e.u < e.v ? e.v : e.u;
    int64_t& m = mult[{a, b}];
    const int64_t before = m;
    m += e.delta;
    if (before == 0 && m > 0) {
      out.Push(a, b, +1);
    } else if (before > 0 && m == 0) {
      out.Push(a, b, -1);
    }
  }
  return out;
}

// The stream a family is differentially driven with: the raw trace for
// every family except triangles, which gets the indicator view.
DynamicGraphStream StreamForFamily(const AlgInfo& info,
                                   const DynamicGraphStream& stream) {
  if (info.tag == AlgTag::kTriangles) return IndicatorStream(stream);
  DynamicGraphStream copy(stream.NumNodes());
  for (const auto& e : stream.Updates()) copy.Push(e.u, e.v, e.delta);
  return copy;
}

// Parses the "u v w" edge-list answers (forest, witness, sparsifier).
Graph ParseEdgeList(const std::string& text, NodeId n) {
  Graph h(n);
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#' || line[0] == '@') continue;
    std::istringstream ss(line);
    NodeId u = 0, v = 0;
    double w = 0;
    if (ss >> u >> v >> w) h.AddEdge(u, v, w);
  }
  return h;
}

std::string MustQuery(const LinearSketch& sk, const std::string& q) {
  std::string out, error;
  EXPECT_TRUE(sk.Query(q, &out, &error)) << q << ": " << error;
  return out;
}

// A structured cut family probing the cuts sparsifiers/witnesses distort
// most: all degree cuts, community-boundary BFS balls, uniform subsets,
// and (for n <= 14) every cut outright.
std::vector<std::vector<bool>> CutFamily(const Graph& g, uint64_t seed) {
  if (g.NumNodes() <= 14) return EnumerateAllCuts(g.NumNodes());
  Rng rng(seed);
  auto cuts = SingletonCuts(g.NumNodes());
  for (auto& c : BfsBallCuts(g, 24, &rng)) cuts.push_back(std::move(c));
  for (auto& c : RandomCuts(g.NumNodes(), 48, &rng)) {
    cuts.push_back(std::move(c));
  }
  return cuts;
}

// Decodes `sk` and checks its answers against exact references computed
// from the trace: connectivity-shaped answers against the support graph,
// cut-valued answers against the weighted multigraph. `aopt` must be the
// options the sketch was built with (k matters for kconnect/kedge).
void ExpectMatchesExact(const AlgInfo& info, const LinearSketch& sk,
                        const ExactRefs& refs, const AlgOptions& aopt) {
  const Graph& g = refs.support;
  const Graph& gw = refs.weighted;
  const NodeId n = g.NumNodes();
  switch (info.tag) {
    case AlgTag::kConnectivity: {
      EXPECT_EQ(MustQuery(sk, "components"),
                std::to_string(g.NumComponents()));
      UnionFind exact(n);
      for (const auto& e : g.Edges()) exact.Union(e.u, e.v);
      for (NodeId u = 0; u + 1 < n; u += 3) {
        std::string q =
            "connected " + std::to_string(u) + " " + std::to_string(u + 1);
        EXPECT_EQ(MustQuery(sk, q), exact.Connected(u, u + 1) ? "yes" : "no")
            << q;
      }
      break;
    }
    case AlgTag::kBipartite: {
      EXPECT_EQ(MustQuery(sk, "bipartite"),
                IsBipartiteExact(g) ? "yes" : "no");
      break;
    }
    case AlgTag::kApproxMst: {
      // Unweighted streams: the MST weight is the spanning-forest edge
      // count, n - #components, exactly.
      EXPECT_EQ(MustQuery(sk, "mstweight"),
                std::to_string(n - g.NumComponents()));
      break;
    }
    case AlgTag::kSpanningForest: {
      EXPECT_EQ(MustQuery(sk, "components"),
                std::to_string(g.NumComponents()));
      Graph forest = ParseEdgeList(MustQuery(sk, "forest"), n);
      EXPECT_TRUE(g.ContainsEdgesOf(forest)) << "forest invented an edge";
      EXPECT_EQ(forest.NumEdges(), n - g.NumComponents())
          << "not a maximal spanning forest";
      break;
    }
    case AlgTag::kKConnectivity: {
      const double lambda = StoerWagnerMinCut(g).value;
      const double witness_cut = std::stod(MustQuery(sk, "witnesscut"));
      const bool k_connected = MustQuery(sk, "kconnected") == "yes";
      if (lambda < aopt.k) {
        EXPECT_EQ(witness_cut, lambda) << "below k the witness is exact";
        EXPECT_FALSE(k_connected);
      } else {
        EXPECT_GE(witness_cut, static_cast<double>(aopt.k));
        EXPECT_TRUE(k_connected);
      }
      break;
    }
    case AlgTag::kKEdgeConnect: {
      // Witness edge weights are recovered multiplicities, so the cut
      // preservation guarantee is stated against the weighted multigraph.
      Graph h = ParseEdgeList(MustQuery(sk, "witness"), n);
      EXPECT_TRUE(g.ContainsEdgesOf(h)) << "witness invented an edge";
      for (const auto& side : CutFamily(gw, /*seed=*/n * 1000003)) {
        const double cut_g = CutValue(gw, side);
        const double cut_h = CutValue(h, side);
        if (cut_g < aopt.k) {
          EXPECT_DOUBLE_EQ(cut_h, cut_g) << "a <k cut lost an edge";
        } else {
          EXPECT_GE(cut_h, static_cast<double>(aopt.k));
        }
      }
      break;
    }
    case AlgTag::kMinCut: {
      // The estimator sees multiplicities, so λ is the weighted min cut.
      const double lambda = StoerWagnerMinCut(gw).value;
      std::string ans = MustQuery(sk, "mincut");
      EXPECT_EQ(ans.find("unresolved"), std::string::npos) << ans;
      const double value = std::stod(ans);
      if (lambda == 0.0) {
        EXPECT_EQ(value, 0.0) << "disconnected graph has min cut 0";
      } else {
        // (1 ± ε) with the registry default ε = 0.5.
        EXPECT_GE(value, 0.5 * lambda) << "λ=" << lambda;
        EXPECT_LE(value, 1.5 * lambda) << "λ=" << lambda;
      }
      break;
    }
    case AlgTag::kSparsify: {
      // Sparsifier edge weights approximate multiplicities; cut error is
      // measured against the weighted multigraph.
      Graph h = ParseEdgeList(MustQuery(sk, "sparsifier"), n);
      EXPECT_TRUE(g.ContainsEdgesOf(h)) << "sparsifier invented an edge";
      if (gw.NumEdges() == 0) break;
      auto stats = CompareCuts(gw, h, CutFamily(gw, /*seed=*/n * 7919));
      EXPECT_GT(stats.cuts_checked, 0u);
      EXPECT_LT(stats.max_rel_error, 0.9)
          << "cut error beyond the ε=0.5 sparsifier's observed envelope";
      break;
    }
    case AlgTag::kWeightedSparsify: {
      // The streamed family scales each edge's multiplicity by its static
      // StreamWeight, so the exact reference is the weighted multigraph
      // rescaled by the same (pure) weight function.
      Graph h = ParseEdgeList(MustQuery(sk, "sparsifier"), n);
      EXPECT_TRUE(g.ContainsEdgesOf(h)) << "wsparsifier invented an edge";
      if (gw.NumEdges() == 0) break;
      Graph gww(n);
      for (const auto& e : gw.Edges()) {
        gww.AddEdge(e.u, e.v,
                    e.weight * static_cast<double>(
                                   WeightedSparsifier::StreamWeight(
                                       e.u, e.v, aopt.max_weight)));
      }
      auto stats = CompareCuts(gww, h, CutFamily(gww, /*seed=*/n * 7919));
      EXPECT_GT(stats.cuts_checked, 0u);
      EXPECT_LT(stats.max_rel_error, 0.9)
          << "cut error beyond the ε=0.5 sparsifier's observed envelope";
      break;
    }
    case AlgTag::kTriangles: {
      auto census = CensusOrder3(g);
      for (const auto& pat : Order3Patterns()) {
        if (pat.name != "triangle") continue;
        const double truth = census.Gamma(pat.canonical_code);
        const double est = std::stod(MustQuery(sk, "gamma triangle"));
        EXPECT_NEAR(est, truth, 0.25) << "gamma[triangle]";
      }
      break;
    }
  }
}

// -------------------------------------------------------------- tests --

// The core matrix: every scenario x every registry family, ingestion path
// rotated so each family meets each path across the matrix.
TEST(Differential, FamiliesMatchExactReferencesAcrossWorkloads) {
  const auto& registry = Registry();
  for (size_t si = 0; si < std::size(kScenarios); ++si) {
    const Scenario& sc = kScenarios[si];
    DynamicGraphStream stream = MakeScenarioStream(sc);
    ASSERT_EQ(stream.Size(), sc.updates);
    for (size_t fi = 0; fi < registry.size(); ++fi) {
      const AlgInfo& info = registry[fi];
      const IngestPath path = static_cast<IngestPath>((si + fi) % 4);
      SCOPED_TRACE(Repro(sc, info.name) + "  [ingest: " + PathName(path) +
                   "]");
      AlgOptions aopt;
      DynamicGraphStream fs = StreamForFamily(info, stream);
      auto sk = info.make(sc.n, aopt, kSketchSeed);
      Ingest(sk.get(), fs, path);
      ExpectMatchesExact(info, *sk, MakeRefs(fs), aopt);
    }
  }
}

// Generated workloads are valid dynamic graph streams: exact requested
// length, in-range endpoints, and no prefix drives a multiplicity
// negative (Definition 1). Profile-specific shape claims are asserted in
// workload_test.cc; this is the contract every profile must meet.
TEST(Differential, GeneratedStreamsKeepMultiplicitiesNonnegative) {
  for (const Scenario& sc : kScenarios) {
    SCOPED_TRACE(Repro(sc, "stats"));
    DynamicGraphStream stream = MakeScenarioStream(sc);
    EXPECT_EQ(stream.Size(), sc.updates);
    for (const auto& e : stream.Updates()) {
      ASSERT_LT(e.u, sc.n);
      ASSERT_LT(e.v, sc.n);
      ASSERT_NE(e.u, e.v);
      ASSERT_NE(e.delta, 0);
    }
    WorkloadStats stats = ComputeWorkloadStats(stream);
    EXPECT_TRUE(stats.nonnegative);
  }
}

// Checkpoint/resume differential: pause every family mid-stream through
// the real GSKC save/restore path, finish the stream on the restored
// sketch, and require byte equality with the uninterrupted run plus
// agreement with the exact references.
TEST(Differential, CheckpointResumeMatchesUninterruptedAndExact) {
  const Scenario& sc = kScenarios[4];  // churn: deletions cross the cut
  DynamicGraphStream stream = MakeScenarioStream(sc);
  for (const AlgInfo& info : Registry()) {
    AlgOptions aopt;
    DynamicGraphStream fs = StreamForFamily(info, stream);
    const size_t cut = fs.Size() / 2;
    SCOPED_TRACE(Repro(sc, info.name) + "  [checkpoint at " +
                 std::to_string(cut) + ", then resume]");
    auto prefix = info.make(sc.n, aopt, kSketchSeed);
    const auto& updates = fs.Updates();
    for (size_t i = 0; i < cut; ++i) {
      prefix->Update(updates[i].u, updates[i].v, updates[i].delta);
    }
    std::string path = testing::TempDir() + "differential_" +
                       std::string(info.name) + ".gskc";
    std::string error;
    ASSERT_TRUE(SaveCheckpoint(path, *prefix, cut, &error)) << error;

    auto ckpt = ReadCheckpointFile(path, &error);
    ASSERT_TRUE(ckpt.has_value()) << error;
    EXPECT_EQ(ckpt->alg, info.tag);
    EXPECT_EQ(ckpt->stream_pos, cut);
    auto resumed = RestoreSketch(*ckpt, &error);
    ASSERT_NE(resumed, nullptr) << error;
    for (size_t i = cut; i < updates.size(); ++i) {
      resumed->Update(updates[i].u, updates[i].v, updates[i].delta);
    }

    auto whole = info.make(sc.n, aopt, kSketchSeed);
    Ingest(whole.get(), fs, IngestPath::kSequential);
    std::string resumed_bytes, whole_bytes;
    resumed->AppendTo(&resumed_bytes);
    whole->AppendTo(&whole_bytes);
    EXPECT_EQ(resumed_bytes, whole_bytes)
        << "resume is not byte-identical to the uninterrupted run";
    ExpectMatchesExact(info, *resumed, MakeRefs(fs), aopt);
    std::remove(path.c_str());
  }
}

// Shard/merge differential: three sites sketch a round-robin partition of
// the stream independently; merging must reproduce the single-stream
// sketch byte-for-byte and agree with the exact references (linearity is
// what makes distributed sketching work at all).
TEST(Differential, ShardMergeMatchesSingleStreamAndExact) {
  const Scenario& sc = kScenarios[5];  // mixed: all regimes in one stream
  DynamicGraphStream stream = MakeScenarioStream(sc);
  constexpr size_t kShards = 3;
  for (const AlgInfo& info : Registry()) {
    SCOPED_TRACE(Repro(sc, info.name) + "  [3-way shard + merge]");
    AlgOptions aopt;
    DynamicGraphStream fs = StreamForFamily(info, stream);
    std::unique_ptr<LinearSketch> merged;
    std::string error;
    for (size_t j = 0; j < kShards; ++j) {
      auto site = info.make(sc.n, aopt, kSketchSeed);
      const auto& updates = fs.Updates();
      for (size_t i = j; i < updates.size(); i += kShards) {
        site->Update(updates[i].u, updates[i].v, updates[i].delta);
      }
      if (merged == nullptr) {
        merged = std::move(site);
      } else {
        ASSERT_TRUE(merged->Merge(*site, &error)) << error;
      }
    }
    auto whole = info.make(sc.n, aopt, kSketchSeed);
    Ingest(whole.get(), fs, IngestPath::kSequential);
    std::string merged_bytes, whole_bytes;
    merged->AppendTo(&merged_bytes);
    whole->AppendTo(&whole_bytes);
    EXPECT_EQ(merged_bytes, whole_bytes)
        << "shard-merge is not byte-identical to the single stream";
    ExpectMatchesExact(info, *merged, MakeRefs(fs), aopt);
  }
}

// Snapshot differential: a mid-stream snapshot taken while the driver
// keeps ingesting must answer exactly like the stream stopped at that
// position — checked against the exact reference of the PREFIX graph —
// and the final sketch must still match the full-stream reference.
TEST(Differential, MidStreamSnapshotMatchesExactPrefix) {
  const Scenario& sc = kScenarios[3];  // sliding: prefix differs sharply
  DynamicGraphStream stream = MakeScenarioStream(sc);
  for (const AlgInfo& info : Registry()) {
    AlgOptions aopt;
    DynamicGraphStream fs = StreamForFamily(info, stream);
    const size_t cut = fs.Size() / 2;
    SCOPED_TRACE(Repro(sc, info.name) + "  [snapshot at " +
                 std::to_string(cut) + " under ingest]");
    DynamicGraphStream prefix(sc.n);
    for (size_t i = 0; i < cut; ++i) {
      const auto& e = fs.Updates()[i];
      prefix.Push(e.u, e.v, e.delta);
    }
    auto sk = info.make(sc.n, aopt, kSketchSeed);
    DriverOptions opt;
    opt.num_workers = info.endpoint_sharded ? 2 : 1;
    if (info.endpoint_sharded) opt.gutter_bytes = 256;
    SnapshotStore store;
    std::shared_ptr<const SketchSnapshot> snap;
    {
      SketchDriver<LinearSketch> driver(sk.get(), opt);
      for (size_t i = 0; i < fs.Size(); ++i) {
        const auto& e = fs.Updates()[i];
        driver.Push(e.u, e.v, e.delta);
        if (i + 1 == cut) snap = PublishSnapshot(&driver, &store);
      }
      driver.Drain();
    }
    ASSERT_NE(snap, nullptr);
    EXPECT_EQ(snap->stream_pos, cut);
    ExpectMatchesExact(info, *snap->sketch, MakeRefs(prefix), aopt);
    ExpectMatchesExact(info, *sk, MakeRefs(fs), aopt);
  }
}

}  // namespace
}  // namespace gsketch
