// Reference implementation of the PRE-ARENA sketch storage layout, kept
// verbatim for the parity tier (tests/parity_test.cc).
//
// Before the arena refactor, every node's ℓ₀-sampler and k-RECOVERY sketch
// owned its own heap-allocated cell vector, and banks were vectors of
// samplers. The arena refactor moved all cells into one bank-owned
// contiguous allocation but promised BIT-IDENTICAL measurements: same
// seeds, same hash calls, same cell values, same wire bytes. This header
// preserves the old layout (update loops and serialization included) as
// the ground truth that promise is tested against. It must NOT be
// "modernized" to share code with src/ — independence is the point.
#ifndef GRAPHSKETCH_TESTS_REFERENCE_LAYOUT_H_
#define GRAPHSKETCH_TESTS_REFERENCE_LAYOUT_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/graph/edge_id.h"
#include "src/hash/splitmix.h"
#include "src/sketch/l0_sampler.h"
#include "src/sketch/one_sparse.h"
#include "src/sketch/sparse_recovery.h"

namespace gsketch::reference {

/// The historical per-node ℓ₀-sampler: owns a cell vector per instance.
class RefL0Sampler {
 public:
  RefL0Sampler(uint64_t domain, uint32_t repetitions, uint64_t seed)
      : domain_(domain),
        reps_(repetitions),
        levels_(LevelsFor(domain)),
        seed_(seed) {
    cells_.resize(static_cast<size_t>(reps_) * (levels_ + 1));
  }

  void Update(uint64_t index, int64_t delta) {
    assert(index < domain_);
    for (uint32_t r = 0; r < reps_; ++r) {
      uint64_t rep_seed = DeriveSeed(seed_, r);
      uint32_t z = GeometricLevel(Mix64(rep_seed, 0x5e7eu, index), levels_);
      uint64_t finger = OneSparseCell::FingerOf(rep_seed, index);
      for (uint32_t l = 0; l <= z; ++l) {
        cells_[CellAt(r, l)].Update(index, delta, finger);
      }
    }
  }

  void Merge(const RefL0Sampler& other) {
    assert(domain_ == other.domain_ && reps_ == other.reps_ &&
           seed_ == other.seed_);
    for (size_t i = 0; i < cells_.size(); ++i) {
      cells_[i].Merge(other.cells_[i]);
    }
  }

  std::optional<L0Sample> Sample() const {
    for (uint32_t r = 0; r < reps_; ++r) {
      uint64_t rep_seed = DeriveSeed(seed_, r);
      for (uint32_t l = levels_ + 1; l-- > 0;) {
        auto res = cells_[CellAt(r, l)].Decode(rep_seed);
        if (res.has_value()) {
          return L0Sample{res->index, res->value};
        }
      }
    }
    return std::nullopt;
  }

  bool IsZero() const {
    for (uint32_t r = 0; r < reps_; ++r) {
      if (!cells_[CellAt(r, 0)].IsZero()) return false;
    }
    return true;
  }

  size_t CellCount() const { return cells_.size(); }

  /// Historical wire record, written strictly per-cell (no bulk copies).
  void AppendTo(std::string* out) const {
    ByteWriter w(out);
    w.U32(0x4c30534bu);  // "L0SK"
    w.U64(domain_);
    w.U32(reps_);
    w.U64(seed_);
    for (const auto& cell : cells_) cell.AppendTo(&w);
  }

 private:
  static uint32_t LevelsFor(uint64_t domain) {
    uint32_t l = 0;
    while ((uint64_t{1} << l) < domain && l < 63) ++l;
    return l;
  }

  size_t CellAt(uint32_t rep, uint32_t level) const {
    return static_cast<size_t>(rep) * (levels_ + 1) + level;
  }

  uint64_t domain_;
  uint32_t reps_;
  uint32_t levels_;
  uint64_t seed_;
  std::vector<OneSparseCell> cells_;
};

/// The historical bank: a vector of per-node samplers, each with its own
/// heap allocation.
class RefNodeL0Bank {
 public:
  RefNodeL0Bank(NodeId n, uint32_t repetitions, uint64_t seed) {
    samplers_.reserve(n);
    uint64_t domain = EdgeDomain(n);
    for (NodeId u = 0; u < n; ++u) {
      samplers_.emplace_back(domain, repetitions, seed);
    }
  }

  void Update(NodeId u, NodeId v, int64_t delta) {
    assert(u != v);
    uint64_t id = EdgeId(u, v);
    samplers_[u].Update(id, delta * IncidenceSignRef(u, u, v));
    samplers_[v].Update(id, delta * IncidenceSignRef(v, u, v));
  }

  void UpdateEndpoint(NodeId endpoint, NodeId u, NodeId v, int64_t delta) {
    assert(u != v && (endpoint == u || endpoint == v));
    samplers_[endpoint].Update(EdgeId(u, v),
                               delta * IncidenceSignRef(endpoint, u, v));
  }

  const RefL0Sampler& Of(NodeId u) const { return samplers_[u]; }

  RefL0Sampler SumOver(const std::vector<NodeId>& nodes) const {
    assert(!nodes.empty());
    RefL0Sampler acc = samplers_[nodes[0]];
    for (size_t i = 1; i < nodes.size(); ++i) acc.Merge(samplers_[nodes[i]]);
    return acc;
  }

  void Merge(const RefNodeL0Bank& other) {
    assert(samplers_.size() == other.samplers_.size());
    for (size_t u = 0; u < samplers_.size(); ++u) {
      samplers_[u].Merge(other.samplers_[u]);
    }
  }

  void AppendTo(std::string* out) const {
    ByteWriter w(out);
    w.U32(static_cast<uint32_t>(samplers_.size()));
    for (const auto& s : samplers_) s.AppendTo(out);
  }

  NodeId num_nodes() const { return static_cast<NodeId>(samplers_.size()); }

 private:
  static int64_t IncidenceSignRef(NodeId node, NodeId u, NodeId v) {
    NodeId lo = u < v ? u : v;
    return node == lo ? +1 : -1;
  }

  std::vector<RefL0Sampler> samplers_;
};

/// The historical per-node k-RECOVERY sketch.
class RefSparseRecovery {
 public:
  RefSparseRecovery(uint64_t domain, uint32_t capacity, uint32_t rows,
                    uint64_t seed)
      : domain_(domain),
        capacity_(capacity < 1 ? 1 : capacity),
        rows_(rows < 1 ? 1 : rows),
        buckets_(2 * (capacity < 1 ? 1 : capacity)),
        seed_(seed) {
    cells_.resize(static_cast<size_t>(rows_) * buckets_);
  }

  void Update(uint64_t index, int64_t delta) {
    assert(index < domain_);
    for (uint32_t r = 0; r < rows_; ++r) {
      cells_[CellOf(r, index)].Update(
          index, delta, OneSparseCell::FingerOf(RowSeed(r), index));
    }
  }

  void Merge(const RefSparseRecovery& other) {
    assert(domain_ == other.domain_ && seed_ == other.seed_);
    for (size_t i = 0; i < cells_.size(); ++i) {
      cells_[i].Merge(other.cells_[i]);
    }
  }

  /// Peeling decoder, identical to the historical implementation.
  RecoveryResult Decode() const {
    std::vector<OneSparseCell> work = cells_;
    RecoveryResult result;
    auto cancel = [&](uint64_t index, int64_t value) {
      for (uint32_t r = 0; r < rows_; ++r) {
        work[CellOf(r, index)].Update(
            index, -value, OneSparseCell::FingerOf(RowSeed(r), index));
      }
    };
    bool progress = true;
    while (progress) {
      progress = false;
      for (uint32_t r = 0; r < rows_; ++r) {
        for (uint32_t b = 0; b < buckets_; ++b) {
          auto one = work[static_cast<size_t>(r) * buckets_ + b].Decode(
              RowSeed(r));
          if (!one.has_value()) continue;
          if (result.entries.size() >
              static_cast<size_t>(capacity_) * 4 + 16) {
            result.entries.clear();
            return result;
          }
          result.entries.emplace_back(one->index, one->value);
          cancel(one->index, one->value);
          progress = true;
        }
      }
    }
    for (const auto& cell : work) {
      if (!cell.IsZero()) {
        result.entries.clear();
        return result;
      }
    }
    std::sort(result.entries.begin(), result.entries.end());
    std::vector<std::pair<uint64_t, int64_t>> merged;
    for (const auto& [idx, val] : result.entries) {
      if (!merged.empty() && merged.back().first == idx) {
        merged.back().second += val;
      } else {
        merged.emplace_back(idx, val);
      }
    }
    merged.erase(std::remove_if(merged.begin(), merged.end(),
                                [](const auto& e) { return e.second == 0; }),
                 merged.end());
    result.entries = std::move(merged);
    result.ok = true;
    return result;
  }

  bool IsZero() const {
    for (const auto& cell : cells_) {
      if (!cell.IsZero()) return false;
    }
    return true;
  }

  /// Historical wire record, written strictly per-cell.
  void AppendTo(std::string* out) const {
    ByteWriter w(out);
    w.U32(0x4b524543u);  // "KREC"
    w.U64(domain_);
    w.U32(capacity_);
    w.U32(rows_);
    w.U64(seed_);
    for (const auto& cell : cells_) cell.AppendTo(&w);
  }

 private:
  size_t CellOf(uint32_t row, uint64_t index) const {
    uint64_t h = Mix64(DeriveSeed(seed_, 0x7002u + row), index);
    uint64_t b = static_cast<uint64_t>(
        (static_cast<__uint128_t>(h) * buckets_) >> 64);
    return static_cast<size_t>(row) * buckets_ + static_cast<size_t>(b);
  }

  uint64_t RowSeed(uint32_t row) const {
    return DeriveSeed(seed_, 0x7001u + row);
  }

  uint64_t domain_;
  uint32_t capacity_;
  uint32_t rows_;
  uint32_t buckets_;
  uint64_t seed_;
  std::vector<OneSparseCell> cells_;
};

/// The historical recovery bank: a vector of per-node sketches.
class RefNodeRecoveryBank {
 public:
  RefNodeRecoveryBank(NodeId n, uint32_t capacity, uint32_t rows,
                      uint64_t seed) {
    sketches_.reserve(n);
    uint64_t domain = EdgeDomain(n);
    for (NodeId u = 0; u < n; ++u) {
      sketches_.emplace_back(domain, capacity, rows, seed);
    }
  }

  void Update(NodeId u, NodeId v, int64_t delta) {
    assert(u != v);
    uint64_t id = EdgeId(u, v);
    sketches_[u].Update(id, u < v ? delta : -delta);
    sketches_[v].Update(id, u < v ? -delta : delta);
  }

  const RefSparseRecovery& Of(NodeId u) const { return sketches_[u]; }

  RefSparseRecovery SumOver(const std::vector<NodeId>& nodes) const {
    assert(!nodes.empty());
    RefSparseRecovery acc = sketches_[nodes[0]];
    for (size_t i = 1; i < nodes.size(); ++i) acc.Merge(sketches_[nodes[i]]);
    return acc;
  }

  void Merge(const RefNodeRecoveryBank& other) {
    assert(sketches_.size() == other.sketches_.size());
    for (size_t u = 0; u < sketches_.size(); ++u) {
      sketches_[u].Merge(other.sketches_[u]);
    }
  }

  NodeId num_nodes() const { return static_cast<NodeId>(sketches_.size()); }

 private:
  std::vector<RefSparseRecovery> sketches_;
};

}  // namespace gsketch::reference

#endif  // GRAPHSKETCH_TESTS_REFERENCE_LAYOUT_H_
